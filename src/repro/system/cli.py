"""Command-line interface to the TSAD model-selection system.

Exposes the demo system's workflow as sub-commands so that the pipeline can
be driven without writing Python:

* ``generate-data`` — synthesise benchmark series to CSV files.
* ``label``         — run the detector oracle over a directory of series and
  store the performance matrix.
* ``train``         — train a selector (optionally with PISL / MKI / PA) on
  labelled historical data and save it to a selector store.
* ``evaluate``      — evaluate a stored selector on labelled series.
* ``select``        — predict the best TSAD model for one series.
* ``detect``        — select a model and run it, printing the metrics.
* ``distill``       — distill a stored teacher selector into a fast student
  (and its int8-quantized twin) and save both next to the teacher, with a
  calibrated cascade margin threshold stamped on each tier.
* ``train-cost-model`` — harvest ``cost_observation`` events from recorded
  audit logs and fit the cascade's runtime/peak-memory cost model.
* ``batch-select``  — serve a whole directory of series through the batched,
  cached selection service and report throughput + cache statistics.
* ``serve``         — long-running mode: read series file paths from stdin,
  answer each with one JSON line (cache kept warm across queries).
* ``stream``        — incremental mode: replay series files (or stdin ticks)
  as live streams through the streaming engine, one JSON line per update.
* ``serve-sharded`` — run the streaming engine across N supervised shard
  processes: replay series files through the sharded service, or listen on
  a TCP port for length-prefixed JSON requests.
* ``explain``       — explain a stream's selection (vote breakdown, winner
  margin, drift trajectory) from a recorded audit log or a running
  ``serve-sharded`` front end.
* ``metrics``       — fetch Prometheus text metrics from a running
  ``serve-sharded`` front end (router + every shard).
* ``list-selectors`` — show the contents of a selector store.

Run ``python -m repro.system.cli --help`` for details; ``docs/cli.md`` has a
worked example for every command.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from ..core.config import MKIConfig, PISLConfig, PruningConfig, TrainerConfig
from ..data import generate_series
from ..data.loaders import load_series_directory, load_series_file, save_series_file
from ..data.records import DATASET_NAMES
from ..data.windows import build_selector_dataset, extract_windows
from ..detectors import make_default_model_set
from ..eval import Oracle, evaluate_selection
from ..selectors import make_selector, selector_names
from ..selectors.nn_selector import NNSelector
from .anomaly_detection import run_detection
from .reporting import format_table
from .selector_store import SelectorStore


def _add_runtime_args(parser: argparse.ArgumentParser, workers: bool = True,
                      worker_mode: bool = True) -> None:
    """Shared runtime flags: precision and worker fan-out.

    Defaults come from the environment (``REPRO_PRECISION``,
    ``REPRO_MAX_WORKERS``, ``REPRO_WORKER_MODE``); the flags override it.
    ``worker_mode=False`` is for commands whose fan-out is thread-only
    (the stream engine's scorer updates mutate per-stream state in place).
    """
    group = parser.add_argument_group("runtime")
    group.add_argument("--precision", choices=["float32", "float64"], default=None,
                       help="kernel precision (default: $REPRO_PRECISION or float64)")
    if workers:
        group.add_argument("--workers", type=int, default=None,
                           help="fan-out worker count, 0 = sequential "
                                "(default: $REPRO_MAX_WORKERS or 0)")
        if worker_mode:
            group.add_argument("--worker-mode", choices=["thread", "process"],
                               default=None,
                               help="worker pool backing "
                                    "(default: $REPRO_WORKER_MODE or thread)")


def _apply_runtime_args(args: argparse.Namespace) -> None:
    """Resolve the runtime flags against the environment, set the precision."""
    from ..accel import config as accel_config
    from ..accel.precision import set_default_precision

    if getattr(args, "precision", None) is not None:
        set_default_precision(args.precision)
    if hasattr(args, "workers"):
        args.workers = accel_config.default_max_workers(args.workers)
    if hasattr(args, "worker_mode"):
        args.worker_mode = accel_config.default_worker_mode(args.worker_mode)


#: suffix appended to a teacher's store name per serving tier
_TIER_SUFFIX = {"teacher": "", "teacher-int8": "-int8",
                "student": "-student", "student-int8": "-student-int8"}


def _tier_name(name: str, tier: str) -> str:
    """Store name of the selector serving one tier (``distill`` naming)."""
    return name + _TIER_SUFFIX[tier]


def _load_tier_selector(store: SelectorStore, name: str, tier: str):
    """Load the selector backing one serving tier, with a helpful error."""
    stored = _tier_name(name, tier)
    try:
        return store.load(stored)
    except KeyError:
        if tier == "teacher":
            raise SystemExit(f"no stored selector named {name!r}")
        if tier == "teacher-int8":
            raise SystemExit(
                f"no stored selector named {stored!r} — run the "
                f"quantize-teacher command on {name!r} first to produce "
                f"the int8 teacher tier")
        raise SystemExit(
            f"no stored selector named {stored!r} — run the distill command "
            f"on {name!r} first to produce the {tier} tier")


def _add_tier_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--selector-tier", default="teacher",
                        choices=["teacher", "teacher-int8", "student", "student-int8"],
                        help="serve the named selector itself (teacher), its "
                             "quantized twin NAME-int8 produced by the "
                             "quantize-teacher command, or its distilled "
                             "companion NAME-student / NAME-student-int8 "
                             "produced by the distill command")


def _add_cascade_args(parser: argparse.ArgumentParser) -> None:
    """Cascade routing + SLO admission flags (batch-select/serve/stream/serve-sharded)."""
    group = parser.add_argument_group("cascade")
    group.add_argument("--cascade", action="store_true",
                       help="confidence-gated cascade: the distilled fast tier "
                            "answers windows whose top-1 margin clears the "
                            "calibrated threshold, the rest escalate to the "
                            "teacher (uses NAME-student-int8 unless "
                            "--selector-tier picks the float student; "
                            "--selector-tier teacher-int8 escalates to the "
                            "quantized teacher NAME-int8 instead)")
    group.add_argument("--cascade-threshold", type=float, default=None,
                       help="margin threshold override (default: the value "
                            "calibrated by the distill command, else 0.1)")
    group.add_argument("--cascade-seed", type=int, default=0,
                       help="seed of the deterministic tie-break for windows "
                            "landing exactly on the threshold")
    group.add_argument("--latency-slo-ms", type=float, default=None,
                       help="per-batch latency SLO in ms: admission picks the "
                            "best predicted-quality plan (teacher/cascade/fast) "
                            "fitting it, falling back to the cheapest "
                            "(audited + metered) when nothing fits")
    group.add_argument("--memory-budget-mb", type=float, default=None,
                       help="per-batch peak-memory budget in MB for admission "
                            "(see --latency-slo-ms)")
    group.add_argument("--cost-model", type=Path, default=None,
                       help="cost-model JSON fitted by train-cost-model "
                            "(default: deterministic analytic coefficients)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kdselector",
        description="TSAD model selection with the KDSelector learning framework",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-data", help="synthesise benchmark series to CSV files")
    gen.add_argument("output_dir", type=Path)
    gen.add_argument("--datasets", nargs="*", default=DATASET_NAMES, choices=DATASET_NAMES,
                     metavar="DATASET")
    gen.add_argument("--per-dataset", type=int, default=2)
    gen.add_argument("--length", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)

    label = sub.add_parser("label", help="run the detector oracle over labelled series")
    label.add_argument("data_dir", type=Path)
    label.add_argument("output", type=Path, help="where to write the performance matrix (.npz)")
    label.add_argument("--detector-window", type=int, default=24)
    label.add_argument("--metric", default="auc_pr", choices=["auc_pr", "auc_roc", "best_f1"])
    label.add_argument("--cache-dir", type=Path, default=None)
    _add_runtime_args(label)

    train = sub.add_parser("train", help="train a selector on labelled historical data")
    train.add_argument("data_dir", type=Path)
    train.add_argument("performance", type=Path, help=".npz produced by the label command")
    train.add_argument("--selector", default="ResNet", choices=selector_names())
    train.add_argument("--store", type=Path, default=Path("selector_store"))
    train.add_argument("--name", default=None, help="name inside the store (default: selector type)")
    train.add_argument("--window", type=int, default=96)
    train.add_argument("--stride", type=int, default=48)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--lr", type=float, default=1e-3)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--pisl", action="store_true", help="enable performance-informed soft labels")
    train.add_argument("--alpha", type=float, default=0.4)
    train.add_argument("--t-soft", type=float, default=0.25)
    train.add_argument("--mki", action="store_true", help="enable meta-knowledge integration")
    train.add_argument("--mki-weight", type=float, default=0.78)
    train.add_argument("--projection-dim", type=int, default=64)
    train.add_argument("--pruning", default="none", choices=["none", "infobatch", "pa"])
    train.add_argument("--pruning-ratio", type=float, default=0.8)
    train.add_argument("--lsh-bits", type=int, default=14)
    train.add_argument("--bins", type=int, default=8)

    distill = sub.add_parser("distill",
                             help="distill a stored teacher selector into a fast "
                                  "student + int8 twin")
    distill.add_argument("data_dir", type=Path,
                         help="directory of series used as the transfer set")
    distill.add_argument("--store", type=Path, default=Path("selector_store"))
    distill.add_argument("--name", required=True,
                         help="teacher selector name; the student is saved as "
                              "NAME-student, the quantized twin as NAME-student-int8")
    distill.add_argument("--window", type=int, default=96)
    distill.add_argument("--stride", type=int, default=48)
    distill.add_argument("--hidden", type=int, default=64,
                         help="student hidden width")
    distill.add_argument("--features", default="stats",
                         choices=["stats", "rocket", "both"],
                         help="static encodings feeding the student")
    distill.add_argument("--kernels", type=int, default=96,
                         help="ROCKET kernels when --features includes rocket")
    distill.add_argument("--epochs", type=int, default=25)
    distill.add_argument("--batch-size", type=int, default=64)
    distill.add_argument("--lr", type=float, default=1e-2)
    distill.add_argument("--alpha", type=float, default=0.9,
                         help="soft-label weight of the distillation objective")
    distill.add_argument("--t-soft", type=float, default=0.5,
                         help="temperature sharpening the teacher's probabilities")
    distill.add_argument("--calibration-fraction", type=float, default=0.25,
                         help="windows held out for calibration + agreement gates")
    distill.add_argument("--min-agreement", type=float, default=0.97,
                         help="int8-vs-float selection agreement the quantized "
                              "twin must reach (the dequantize-compare gate)")
    distill.add_argument("--cascade-target-agreement", type=float, default=0.995,
                         help="teacher-agreement target of the cascade margin "
                              "threshold calibrated on the held-out windows "
                              "(stamped on each tier's store metadata)")
    distill.add_argument("--seed", type=int, default=0)

    quantize = sub.add_parser("quantize-teacher",
                              help="quantize a stored teacher's conv encoder to "
                                   "int8 and save it as the NAME-int8 tier")
    quantize.add_argument("data_dir", type=Path,
                          help="directory of series used as the calibration set")
    quantize.add_argument("--store", type=Path, default=Path("selector_store"))
    quantize.add_argument("--name", required=True,
                          help="teacher selector name; the quantized twin is "
                               "saved as NAME-int8")
    quantize.add_argument("--window", type=int, default=96)
    quantize.add_argument("--stride", type=int, default=48)
    quantize.add_argument("--min-agreement", type=float, default=0.97,
                          help="int8-vs-teacher selection agreement the "
                               "quantized teacher must reach (the "
                               "dequantize-compare gate)")

    evaluate = sub.add_parser("evaluate", help="evaluate a stored selector on labelled series")
    evaluate.add_argument("data_dir", type=Path)
    evaluate.add_argument("performance", type=Path)
    evaluate.add_argument("--store", type=Path, default=Path("selector_store"))
    evaluate.add_argument("--name", required=True)
    evaluate.add_argument("--window", type=int, default=96)

    select = sub.add_parser("select", help="predict the best TSAD model for one series")
    select.add_argument("series_file", type=Path)
    select.add_argument("--store", type=Path, default=Path("selector_store"))
    select.add_argument("--name", required=True)
    select.add_argument("--window", type=int, default=96)
    select.add_argument("--detector-window", type=int, default=24)

    detect = sub.add_parser("detect", help="select a model, run it and print metrics")
    detect.add_argument("series_file", type=Path)
    detect.add_argument("--store", type=Path, default=Path("selector_store"))
    detect.add_argument("--name", required=True)
    detect.add_argument("--window", type=int, default=96)
    detect.add_argument("--detector-window", type=int, default=24)
    detect.add_argument("--scores-output", type=Path, default=None,
                        help="optional CSV to write the point-wise anomaly scores to")
    _add_runtime_args(detect, workers=False)

    batch = sub.add_parser("batch-select",
                           help="batched, cached model selection over a directory of series")
    batch.add_argument("data_dir", type=Path)
    batch.add_argument("--store", type=Path, default=Path("selector_store"))
    batch.add_argument("--name", required=True)
    batch.add_argument("--window", type=int, default=96)
    batch.add_argument("--aggregation", default="vote", choices=["vote", "mean"])
    batch.add_argument("--cache-capacity", type=int, default=4096)
    batch.add_argument("--max-batch-windows", type=int, default=8192,
                       help="micro-batch size cap, in selector windows")
    batch.add_argument("--repeat", type=int, default=1,
                       help="serve the directory this many times (>1 shows warm-cache speed)")
    _add_tier_arg(batch)
    _add_cascade_args(batch)
    _add_runtime_args(batch)

    serve = sub.add_parser("serve",
                           help="read series file paths from stdin, answer each as a JSON line")
    serve.add_argument("--store", type=Path, default=Path("selector_store"))
    serve.add_argument("--name", required=True)
    serve.add_argument("--window", type=int, default=96)
    serve.add_argument("--aggregation", default="vote", choices=["vote", "mean"])
    serve.add_argument("--cache-capacity", type=int, default=4096)
    _add_tier_arg(serve)
    _add_cascade_args(serve)
    _add_runtime_args(serve)

    stream = sub.add_parser("stream",
                            help="replay series files (or stdin ticks) through the "
                                 "incremental streaming engine")
    stream.add_argument("series_files", type=Path, nargs="*",
                        help="series files replayed as concurrent streams; "
                             "none means read ticks from stdin")
    stream.add_argument("--store", type=Path, default=Path("selector_store"))
    stream.add_argument("--name", required=True)
    stream.add_argument("--window", type=int, default=96)
    stream.add_argument("--stride", type=int, default=None,
                        help="window stride (default: non-overlapping)")
    stream.add_argument("--chunk", type=int, default=32,
                        help="points appended per stream per replayed tick")
    stream.add_argument("--aggregation", default="vote", choices=["vote", "mean"])
    stream.add_argument("--cache-capacity", type=int, default=0,
                        help="window-probability LRU entries (0 disables)")
    stream.add_argument("--max-batch-windows", type=int, default=8192,
                        help="cross-stream forward-batch budget, in windows")
    stream.add_argument("--drift-threshold", type=float, default=None,
                        help="total-variation drift threshold enabling re-selection "
                             "(default: drift monitoring off)")
    stream.add_argument("--score", action="store_true",
                        help="maintain per-point anomaly scores with the selected detector")
    stream.add_argument("--detector-window", type=int, default=24)
    stream.add_argument("--emit", default="all", choices=["all", "changes"],
                        help="print every tick update or only selection changes")
    stream.add_argument("--audit", type=Path, default=None,
                        help="append a JSONL audit trail of selections, drift "
                             "events and re-selections to this file")
    stream.add_argument("--trace", type=Path, default=None,
                        help="append JSONL spans (flush/forward/score timing) "
                             "to this file")
    stream.add_argument("--metrics-output", type=Path, default=None,
                        help="write Prometheus text metrics to this file on exit")
    _add_tier_arg(stream)
    stream.add_argument("--refresh-min-agreement", type=float, default=None,
                        help="enable drift-triggered student refresh: probe "
                             "student-vs-teacher agreement on drift and fine-tune "
                             "the student when it falls below this threshold "
                             "(needs --selector-tier student or student-int8)")
    _add_cascade_args(stream)
    _add_runtime_args(stream, worker_mode=False)

    sharded = sub.add_parser("serve-sharded",
                             help="run the streaming engine across supervised "
                                  "shard processes")
    sharded.add_argument("series_files", type=Path, nargs="*",
                         help="series files replayed as concurrent streams; "
                              "none requires --port (TCP server mode)")
    sharded.add_argument("--store", type=Path, default=Path("selector_store"))
    sharded.add_argument("--name", required=True)
    sharded.add_argument("--shards", type=int, default=2,
                         help="number of shard processes")
    sharded.add_argument("--window", type=int, default=96)
    sharded.add_argument("--stride", type=int, default=None,
                         help="window stride (default: non-overlapping)")
    sharded.add_argument("--chunk", type=int, default=32,
                         help="points appended per stream per replayed tick")
    sharded.add_argument("--aggregation", default="vote", choices=["vote", "mean"])
    sharded.add_argument("--drift-threshold", type=float, default=None,
                         help="total-variation drift threshold enabling "
                              "re-selection (default: drift monitoring off)")
    sharded.add_argument("--port", type=int, default=None,
                         help="listen on this TCP port for length-prefixed "
                              "JSON requests instead of replaying files "
                              "(0 picks a free port)")
    sharded.add_argument("--host", default="127.0.0.1",
                         help="bind address for --port mode")
    sharded.add_argument("--request-timeout", type=float, default=10.0,
                         help="per-shard request timeout in seconds before "
                              "the supervisor restarts a shard")
    sharded.add_argument("--audit", type=Path, default=None,
                         help="append a JSONL audit trail of selections, drift "
                              "events, re-selections and shard restarts to "
                              "this file")
    sharded.add_argument("--metrics-output", type=Path, default=None,
                         help="write Prometheus text metrics (router + every "
                              "shard) to this file on exit")
    _add_tier_arg(sharded)
    sharded.add_argument("--refresh-min-agreement", type=float, default=None,
                         help="enable drift-triggered student refresh inside "
                              "each shard: fine-tune the student when its "
                              "agreement with the teacher falls below this "
                              "threshold (needs --selector-tier student or "
                              "student-int8)")
    _add_cascade_args(sharded)

    cost = sub.add_parser("train-cost-model",
                          help="fit the cascade cost model from cost_observation "
                               "events harvested out of recorded audit logs")
    cost.add_argument("audit_files", type=Path, nargs="+",
                      help="JSONL audit logs recorded with --audit")
    cost.add_argument("--output", type=Path, default=None,
                      help="where to write the fitted cost-model JSON "
                           "(required unless --harvest-only)")
    cost.add_argument("--window", type=int, default=96)
    cost.add_argument("--harvest-only", action="store_true",
                      help="print the harvested observations as JSON lines "
                           "without fitting anything")

    explain = sub.add_parser("explain",
                             help="explain a stream's selection: vote breakdown, "
                                  "winner margin, drift trajectory")
    explain.add_argument("stream", help="stream id to explain")
    explain.add_argument("--audit", type=Path, default=None,
                         help="read this recorded audit log instead of "
                              "querying a running front end")
    explain.add_argument("--host", default="127.0.0.1",
                         help="serve-sharded front-end host")
    explain.add_argument("--port", type=int, default=None,
                         help="serve-sharded front-end port")
    explain.add_argument("--json", action="store_true",
                         help="print the raw explain record as JSON")

    metrics = sub.add_parser("metrics",
                             help="fetch Prometheus text metrics from a running "
                                  "serve-sharded front end")
    metrics.add_argument("--host", default="127.0.0.1",
                         help="serve-sharded front-end host")
    metrics.add_argument("--port", type=int, required=True,
                         help="serve-sharded front-end port")

    list_cmd = sub.add_parser("list-selectors", help="show the contents of a selector store")
    list_cmd.add_argument("--store", type=Path, default=Path("selector_store"))

    return parser


# --------------------------------------------------------------------------- #
# command implementations
# --------------------------------------------------------------------------- #
def _cmd_generate_data(args: argparse.Namespace) -> int:
    args.output_dir.mkdir(parents=True, exist_ok=True)
    count = 0
    for dataset in args.datasets:
        for index in range(args.per_dataset):
            record = generate_series(dataset, index, args.length, args.seed)
            save_series_file(record, args.output_dir / f"{record.name}.csv")
            count += 1
    print(f"wrote {count} series to {args.output_dir}")
    return 0


def _detector_names_path(performance_path: Path) -> Path:
    return performance_path.with_suffix(".detectors.json")


def _cmd_label(args: argparse.Namespace) -> int:
    _apply_runtime_args(args)
    records = load_series_directory(args.data_dir)
    model_set = make_default_model_set(window=args.detector_window, fast=True)
    oracle = Oracle(model_set, metric=args.metric, cache_dir=args.cache_dir, verbose=True,
                    max_workers=args.workers, worker_mode=args.worker_mode)
    matrix = oracle.performance_matrix(records)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    np.savez(args.output, performance=matrix, names=np.array([r.name for r in records], dtype="U64"))
    _detector_names_path(args.output).write_text(json.dumps(oracle.detector_names))
    print(f"labelled {len(records)} series with {len(model_set)} detectors -> {args.output}")
    best = matrix.max(axis=1).mean()
    print(f"mean best-{args.metric}: {best:.4f}")
    return 0


def _load_labelled(data_dir: Path, performance_path: Path):
    records = load_series_directory(data_dir)
    with np.load(performance_path.with_suffix(".npz") if performance_path.suffix != ".npz"
                 else performance_path, allow_pickle=False) as archive:
        matrix = archive["performance"]
        names = [str(n) for n in archive["names"]]
    by_name = {record.name: record for record in records}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise SystemExit(f"series missing from {data_dir}: {missing[:5]} ...")
    ordered = [by_name[name] for name in names]
    detector_names = json.loads(_detector_names_path(performance_path).read_text())
    return ordered, matrix, detector_names


def _cmd_train(args: argparse.Namespace) -> int:
    records, matrix, detector_names = _load_labelled(args.data_dir, args.performance)
    dataset = build_selector_dataset(records, matrix, detector_names,
                                     window=args.window, stride=args.stride, seed=args.seed)
    selector = make_selector(args.selector, n_classes=dataset.n_classes, seed=args.seed,
                             **({"window": args.window} if args.selector in
                                ("ConvNet", "ResNet", "InceptionTime", "Transformer", "MLP", "LSTMSelector")
                                else {}))

    if isinstance(selector, NNSelector):
        config = TrainerConfig(
            epochs=args.epochs, batch_size=args.batch_size, lr=args.lr, seed=args.seed,
            pisl=PISLConfig(enabled=args.pisl, alpha=args.alpha, t_soft=args.t_soft),
            mki=MKIConfig(enabled=args.mki, weight=args.mki_weight, projection_dim=args.projection_dim),
            pruning=PruningConfig(method=args.pruning, ratio=args.pruning_ratio,
                                  lsh_bits=args.lsh_bits, n_bins=args.bins),
            verbose=True,
        )
        selector.fit(dataset, config=config)
        summary = selector.last_report_.summary()
    else:
        selector.fit(dataset)
        summary = {"selector": args.selector}

    store = SelectorStore(args.store)
    name = args.name or args.selector
    store.save(name, selector, metadata={"window": args.window, **{k: str(v) for k, v in summary.items()}},
               overwrite=True)
    print(f"saved selector {name!r} to {args.store}")
    return 0


def _cmd_distill(args: argparse.Namespace) -> int:
    from ..detectors.base import DEFAULT_MODEL_NAMES
    from ..distill import DistillConfig, calibration_split, distill_student, quantize_student

    try:
        records = load_series_directory(args.data_dir)
    except (FileNotFoundError, NotADirectoryError) as error:
        raise SystemExit(f"no such directory: {error}")
    except (OSError, ValueError) as error:
        raise SystemExit(str(error))
    store = SelectorStore(args.store)
    teacher = _load_tier_selector(store, args.name, "teacher")
    detector_names = (list(DEFAULT_MODEL_NAMES)
                      if teacher.n_classes == len(DEFAULT_MODEL_NAMES)
                      else [f"model-{i}" for i in range(teacher.n_classes)])
    windows = np.vstack([extract_windows(record.series, args.window, stride=args.stride)
                         for record in records])

    config = DistillConfig(
        epochs=args.epochs, batch_size=args.batch_size, lr=args.lr,
        alpha=args.alpha, t_soft=args.t_soft,
        hidden=args.hidden, features=args.features, n_kernels=args.kernels,
        calibration_fraction=args.calibration_fraction,
        min_agreement=args.min_agreement, seed=args.seed,
    )
    student, report = distill_student(teacher, windows, detector_names, config)
    _, calib_idx = calibration_split(len(windows), config.calibration_fraction, config.seed)
    calib_windows = windows[calib_idx] if len(calib_idx) else windows
    try:
        quantized, gate = quantize_student(student, calib_windows,
                                           min_agreement=args.min_agreement)
    except ValueError as error:
        raise SystemExit(f"quantization gate failed: {error}")

    # calibrate the cascade margin threshold per tier on the held-out
    # windows: the smallest threshold whose kept (confident) rows still
    # agree with the teacher at the requested rate
    from ..cascade import calibrate_margin_threshold

    teacher_proba = teacher.predict_proba(calib_windows)
    calibrations = {
        "student": calibrate_margin_threshold(
            student.predict_proba(calib_windows), teacher_proba,
            target_agreement=args.cascade_target_agreement),
        "student-int8": calibrate_margin_threshold(
            quantized.predict_proba(calib_windows), teacher_proba,
            target_agreement=args.cascade_target_agreement),
    }

    def _cascade_metadata(cal):
        return {"cascade_threshold": f"{cal.threshold:.6f}",
                "cascade_escalation_rate": f"{cal.escalation_rate:.6f}",
                "cascade_kept_agreement": f"{cal.kept_agreement:.6f}",
                "cascade_overall_agreement": f"{cal.overall_agreement:.6f}"}

    metadata = {"teacher": args.name, "window": str(args.window),
                "features": args.features, "hidden": str(args.hidden)}
    store.save(_tier_name(args.name, "student"), student,
               metadata={**metadata, **_cascade_metadata(calibrations["student"]),
                         "agreement_vs_teacher": f"{report.student_agreement:.4f}"},
               overwrite=True)
    store.save(_tier_name(args.name, "student-int8"), quantized,
               metadata={**metadata, **_cascade_metadata(calibrations["student-int8"]),
                         "agreement_vs_student": f"{gate['agreement']:.4f}"},
               overwrite=True)

    int8_cal = calibrations["student-int8"]
    rows = [
        ["transfer windows", report.n_windows],
        ["calibration windows", report.n_calibration],
        ["teacher parameters", report.teacher_parameters],
        ["student parameters", report.student_parameters],
        ["student vs teacher agreement", f"{report.student_agreement:.4f}"],
        ["int8 vs student agreement", f"{gate['agreement']:.4f}"],
        ["int8 max |dproba|", f"{gate['max_proba_diff']:.4f}"],
        ["cascade threshold (int8)", f"{int8_cal.threshold:.4f}"],
        ["cascade escalation rate (int8)", f"{int8_cal.escalation_rate:.4f}"],
        ["cascade kept agreement (int8)", f"{int8_cal.kept_agreement:.4f}"],
    ]
    print(format_table(["distillation", "value"], rows))
    print(f"saved {_tier_name(args.name, 'student')!r} and "
          f"{_tier_name(args.name, 'student-int8')!r} to {args.store}")
    return 0


def _cmd_quantize_teacher(args: argparse.Namespace) -> int:
    from ..distill import quantize_teacher

    try:
        records = load_series_directory(args.data_dir)
    except (FileNotFoundError, NotADirectoryError) as error:
        raise SystemExit(f"no such directory: {error}")
    except (OSError, ValueError) as error:
        raise SystemExit(str(error))
    store = SelectorStore(args.store)
    teacher = _load_tier_selector(store, args.name, "teacher")
    windows = np.vstack([extract_windows(record.series, args.window, stride=args.stride)
                         for record in records])
    try:
        quantized, gate = quantize_teacher(teacher, windows,
                                           min_agreement=args.min_agreement)
    except ValueError as error:
        raise SystemExit(f"quantization gate failed: {error}")

    store.save(_tier_name(args.name, "teacher-int8"), quantized,
               metadata={"teacher": args.name, "window": str(args.window)},
               overwrite=True)
    rows = [
        ["calibration windows", gate["n_calibration"]],
        ["quantized convs", gate["n_quantized_convs"]],
        ["folded batch norms", gate["n_folded_bns"]],
        ["int8 vs teacher agreement", f"{gate['agreement']:.4f}"],
        ["int8 max |dproba|", f"{gate['max_proba_diff']:.4f}"],
        ["activation scales hash", gate["act_scales_hash"]],
    ]
    print(format_table(["quantization", "value"], rows))
    print(f"saved {_tier_name(args.name, 'teacher-int8')!r} to {args.store}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    records, matrix, detector_names = _load_labelled(args.data_dir, args.performance)
    selector = SelectorStore(args.store).load(args.name)
    evaluation = evaluate_selection(selector, records, matrix, detector_names, window=args.window)
    rows = sorted(evaluation.per_dataset_score.items())
    print(format_table(["Dataset", "AUC-PR of selected model"], rows))
    print(f"average: {evaluation.average_score:.4f}  "
          f"selection accuracy: {evaluation.selection_accuracy:.4f}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    record = load_series_file(args.series_file)
    selector = SelectorStore(args.store).load(args.name)
    detector_names = list(make_default_model_set(window=args.detector_window, fast=True))
    windows = extract_windows(record.series, args.window, stride=args.window)
    proba = selector.predict_proba(windows)
    votes = np.bincount(proba.argmax(axis=1), minlength=len(detector_names)).astype(float)
    votes /= votes.sum()
    choice = int(votes.argmax())
    print(f"selected model for {record.name}: {detector_names[choice]}")
    rows = sorted(zip(detector_names, votes), key=lambda kv: -kv[1])
    print(format_table(["Model", "Vote share"], rows))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    _apply_runtime_args(args)
    record = load_series_file(args.series_file)
    selector = SelectorStore(args.store).load(args.name)
    model_set = make_default_model_set(window=args.detector_window, fast=True)
    detector_names = list(model_set)
    windows = extract_windows(record.series, args.window, stride=args.window)
    choice = int(np.bincount(selector.predict(windows), minlength=len(detector_names)).argmax())
    chosen = detector_names[choice]
    result = run_detection(record, model_set[chosen], detector_name=chosen)
    print(f"selected model: {chosen}")
    print(format_table(["metric", "value"], sorted(result.metrics.items())))
    if args.scores_output is not None:
        args.scores_output.parent.mkdir(parents=True, exist_ok=True)
        np.savetxt(args.scores_output, result.scores, delimiter=",", header="anomaly_score")
        print(f"wrote scores to {args.scores_output}")
    return 0


def _meta_float(metadata, key: str, default: float) -> float:
    try:
        return float(metadata.get(key, default))
    except (TypeError, ValueError):
        return default


def _resolve_cascade(args: argparse.Namespace, store: SelectorStore, window: int):
    """Build the CascadeRouter the --cascade flags describe (or ``None``).

    Returns ``(router, serving_tier)``: with the cascade on, the serving
    selector is the *fast* tier — ``--selector-tier student`` keeps the
    float student, anything else serves the int8 twin — and the router
    carries the slow tier for escalations: the float teacher, unless
    ``--selector-tier teacher-int8`` swaps in the quantized teacher (its
    gate-measured agreement becomes the plan quality the SLO admission
    prices).  The margin threshold resolves ``--cascade-threshold`` →
    distill-calibrated store metadata → default.
    """
    slo_given = (getattr(args, "latency_slo_ms", None) is not None
                 or getattr(args, "memory_budget_mb", None) is not None)
    if not getattr(args, "cascade", False):
        if slo_given:
            raise SystemExit("--latency-slo-ms/--memory-budget-mb need --cascade")
        return None
    from ..cascade import DEFAULT_THRESHOLD, CascadeRouter, CostModel

    tier = getattr(args, "selector_tier", "teacher")
    fast_tier = tier if tier in ("student", "student-int8") else "student-int8"
    slow_tier = "teacher-int8" if tier == "teacher-int8" else "teacher"
    teacher = _load_tier_selector(store, args.name, slow_tier)
    slow_quality = 1.0
    if slow_tier != "teacher":
        try:
            quant_meta = store.info(_tier_name(args.name, slow_tier)).metadata or {}
        except KeyError:
            quant_meta = {}
        slow_quality = _meta_float(quant_meta.get("quantization", {}) or {},
                                   "agreement", 1.0)
    _load_tier_selector(store, args.name, fast_tier)  # fail early, helpfully
    try:
        metadata = dict(store.info(_tier_name(args.name, fast_tier)).metadata or {})
    except KeyError:
        metadata = {}
    threshold = (args.cascade_threshold if args.cascade_threshold is not None
                 else _meta_float(metadata, "cascade_threshold", DEFAULT_THRESHOLD))
    if args.cost_model is not None:
        try:
            cost_model = CostModel.load(args.cost_model)
        except (OSError, ValueError, KeyError) as error:
            raise SystemExit(f"cannot load cost model {args.cost_model}: {error}")
    else:
        cost_model = CostModel.default(window)
    router = CascadeRouter(
        teacher,
        threshold=float(threshold),
        seed=args.cascade_seed,
        cost_model=cost_model,
        fast_tier=fast_tier,
        slow_tier=slow_tier,
        slow_quality=slow_quality,
        escalation_rate=_meta_float(metadata, "cascade_escalation_rate", 0.1),
        kept_agreement=_meta_float(metadata, "cascade_kept_agreement", 0.995),
        fast_quality=_meta_float(metadata, "cascade_overall_agreement", 0.97),
        window=window,
    )
    return router, fast_tier


def _make_service(args: argparse.Namespace) -> "SelectionService":
    from ..detectors.base import DEFAULT_MODEL_NAMES
    from ..serving import SelectionService, ServingConfig

    store = SelectorStore(args.store)
    tier = getattr(args, "selector_tier", "teacher")
    cascade = _resolve_cascade(args, store, args.window)
    router = None
    if cascade is not None:
        router, tier = cascade
    config = ServingConfig(
        window=args.window,
        aggregation=args.aggregation,
        cache_capacity=args.cache_capacity,
        max_workers=args.workers,
        worker_mode=args.worker_mode,
        selector_tier=tier,
        latency_slo_ms=getattr(args, "latency_slo_ms", None),
        memory_budget_mb=getattr(args, "memory_budget_mb", None),
    )
    selector = _load_tier_selector(store, args.name, tier)
    return SelectionService(selector, DEFAULT_MODEL_NAMES, config, cascade=router)


def _cmd_batch_select(args: argparse.Namespace) -> int:
    import time

    _apply_runtime_args(args)

    from ..serving import microbatches
    from .reporting import format_cache_stats

    try:
        records = load_series_directory(args.data_dir)
    except (FileNotFoundError, NotADirectoryError) as error:
        raise SystemExit(f"no such directory: {error}")
    except (OSError, ValueError) as error:
        raise SystemExit(str(error))
    service = _make_service(args)

    throughput = {}
    results = []
    for pass_index in range(max(args.repeat, 1)):
        start = time.perf_counter()
        results = []
        for batch in microbatches(records, args.window, max_windows=args.max_batch_windows):
            results.extend(service.select_batch(batch))
        elapsed = time.perf_counter() - start
        label = "pass 1 (cold)" if pass_index == 0 else f"pass {pass_index + 1} (warm)"
        throughput[label] = len(records) / max(elapsed, 1e-9)

    rows = [[r.series_name, r.selected_model, r.n_windows, "yes" if r.from_cache else "no"]
            for r in results]
    print(format_table(["Series", "Selected model", "Windows", "Cached"], rows))
    print()
    print(format_cache_stats(service.stats, throughput))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .reporting import format_cache_stats

    _apply_runtime_args(args)
    service = _make_service(args)
    for line in sys.stdin:
        path = line.strip()
        if not path:
            continue
        try:
            record = load_series_file(Path(path))
        except (OSError, ValueError) as error:
            message = str(error) or type(error).__name__
            if isinstance(error, FileNotFoundError):
                message = f"no such file: {error}"
            print(json.dumps({"series": path, "error": message}), flush=True)
            continue
        print(json.dumps(service.select(record).as_dict()), flush=True)
    print(format_cache_stats(service.stats), file=sys.stderr)
    return 0


def _load_refresh_parts(args: argparse.Namespace, store: SelectorStore, selector):
    """Resolve the (teacher, student, refresh_config) trio for --refresh-min-agreement.

    The float student is the trainable target; when the serving tier is
    ``student-int8`` it is loaded alongside so the int8 twin can be
    re-quantized in place after each escalation.
    """
    if getattr(args, "refresh_min_agreement", None) is None:
        return None, None, None
    tier = getattr(args, "selector_tier", "teacher")
    if tier == "teacher":
        raise SystemExit("--refresh-min-agreement needs --selector-tier "
                         "student or student-int8")
    from ..distill import RefreshConfig

    teacher = _load_tier_selector(store, args.name, "teacher")
    student = (_load_tier_selector(store, args.name, "student")
               if tier == "student-int8" else selector)
    return teacher, student, RefreshConfig(min_agreement=args.refresh_min_agreement)


def _make_stream_engine(args: argparse.Namespace) -> "StreamEngine":
    from ..detectors.base import DEFAULT_MODEL_NAMES
    from ..streaming import DriftConfig, StreamEngine, StreamingConfig

    store = SelectorStore(args.store)
    tier = getattr(args, "selector_tier", "teacher")
    cascade = _resolve_cascade(args, store, args.window)
    router = None
    if cascade is not None:
        router, tier = cascade
        args.selector_tier = tier  # refresh parts follow the served tier
    config = StreamingConfig(
        window=args.window,
        stride=args.stride,
        aggregation=args.aggregation,
        cache_capacity=args.cache_capacity,
        max_batch_windows=args.max_batch_windows,
        max_workers=args.workers,
        drift=(DriftConfig(threshold=args.drift_threshold)
               if args.drift_threshold is not None else None),
        selector_tier=tier,
        latency_slo_ms=getattr(args, "latency_slo_ms", None),
        memory_budget_mb=getattr(args, "memory_budget_mb", None),
    )
    model_set = (make_default_model_set(window=args.detector_window, fast=True)
                 if args.score else None)
    selector = _load_tier_selector(store, args.name, tier)
    teacher, student, refresh_config = _load_refresh_parts(args, store, selector)
    refresher = None
    if teacher is not None:
        from ..distill import Int8StudentSelector, StudentRefresher

        refresher = StudentRefresher(
            teacher, student, refresh_config,
            quantized=selector if isinstance(selector, Int8StudentSelector) else None)
    return StreamEngine(selector, DEFAULT_MODEL_NAMES, config, model_set=model_set,
                        refresher=refresher, cascade=router)


def _format_stream_stats(stats) -> str:
    rows = [
        ["streams", stats.n_streams],
        ["flushes", stats.flushes],
        ["points in", stats.points],
        ["windows emitted", stats.windows],
        ["forward-pass windows", stats.forward_windows],
        ["cache-served windows", stats.cached_windows],
        ["drift re-selections", stats.drift_triggers],
        ["tail re-scores", stats.tail_rescores],
        ["full re-scores", stats.full_rescores],
        ["cascade-escalated windows", stats.escalated_windows],
        ["SLO fallbacks", stats.slo_fallbacks],
    ]
    return format_table(["counter", "value"], rows)


def _setup_obs(args: argparse.Namespace):
    """Enable the requested observability surfaces (before engine construction).

    Returns ``(audit, tracer, previous_tracer)``; pass them back to
    :func:`_teardown_obs` when the command finishes.  The metrics registry
    must be enabled *before* engines/services are built (components bind
    their counters at construction time, and forked shards inherit the
    enabled state).
    """
    from .. import obs

    audit = tracer = previous_tracer = None
    if getattr(args, "metrics_output", None) is not None:
        obs.enable()
    if getattr(args, "audit", None) is not None:
        audit = obs.AuditLog(args.audit)
    if getattr(args, "trace", None) is not None:
        tracer = obs.Tracer(sink=args.trace)
        previous_tracer = obs.set_default_tracer(tracer)
    return audit, tracer, previous_tracer


def _teardown_obs(args: argparse.Namespace, audit, tracer, previous_tracer,
                  metrics_text: Optional[str] = None) -> None:
    """Flush/close the surfaces opened by :func:`_setup_obs`.

    ``metrics_text`` overrides the default registry rendering (the sharded
    service concatenates the router's and every shard's sections).
    """
    from .. import obs

    if getattr(args, "metrics_output", None) is not None:
        if metrics_text is None:
            metrics_text = obs.default_registry().render_prometheus()
        args.metrics_output.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_output.write_text(metrics_text)
        print(f"wrote metrics to {args.metrics_output}", file=sys.stderr)
    if tracer is not None:
        obs.set_default_tracer(previous_tracer)
        tracer.close()
    if audit is not None:
        audit.close()
        print(f"wrote {len(audit)} audit events to {args.audit}", file=sys.stderr)


def _cmd_stream(args: argparse.Namespace) -> int:
    from ..streaming import parse_tick_line, replay_records

    _apply_runtime_args(args)
    audit, tracer, previous_tracer = _setup_obs(args)
    engine = _make_stream_engine(args)
    if audit is not None:
        engine.audit = audit

    def emit(update) -> None:
        if args.emit == "changes" and not (update.changed or update.drift_triggered):
            return
        print(json.dumps(update.as_dict()), flush=True)

    try:
        if args.series_files:
            try:
                records = [load_series_file(path) for path in args.series_files]
            except (OSError, ValueError) as error:
                raise SystemExit(str(error) or type(error).__name__)
            for updates in replay_records(engine, records, chunk=args.chunk):
                for update in updates.values():
                    emit(update)
        else:
            for line in sys.stdin:
                if not line.strip():
                    continue
                try:
                    stream_id, values = parse_tick_line(line)
                except ValueError as error:
                    print(json.dumps({"error": str(error)}), flush=True)
                    continue
                emit(engine.push(stream_id, values))
        print(_format_stream_stats(engine.stats), file=sys.stderr)
        return 0
    finally:
        _teardown_obs(args, audit, tracer, previous_tracer)


def _make_sharded_service(args: argparse.Namespace, audit=None) -> "ShardedService":
    from ..detectors.base import DEFAULT_MODEL_NAMES
    from ..service import ServiceConfig, ShardedService, make_engine_factory
    from ..streaming import DriftConfig, StreamingConfig

    store = SelectorStore(args.store)
    tier = getattr(args, "selector_tier", "teacher")
    cascade = _resolve_cascade(args, store, args.window)
    router = None
    if cascade is not None:
        router, tier = cascade
        args.selector_tier = tier  # refresh parts follow the served tier
    selector = _load_tier_selector(store, args.name, tier)
    config = StreamingConfig(
        window=args.window,
        stride=args.stride,
        aggregation=args.aggregation,
        drift=(DriftConfig(threshold=args.drift_threshold)
               if args.drift_threshold is not None else None),
        selector_tier=tier,
        latency_slo_ms=getattr(args, "latency_slo_ms", None),
        memory_budget_mb=getattr(args, "memory_budget_mb", None),
    )
    teacher, student, refresh_config = _load_refresh_parts(args, store, selector)
    factory = make_engine_factory(selector, DEFAULT_MODEL_NAMES, config,
                                  teacher=teacher, student=student,
                                  refresh_config=refresh_config,
                                  cascade=router)
    return ShardedService(factory, ServiceConfig(
        n_shards=args.shards, request_timeout_s=args.request_timeout),
        audit=audit)


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    if args.port is None and not args.series_files:
        raise SystemExit("serve-sharded needs series files to replay, "
                         "or --port to listen for requests")
    audit, tracer, previous_tracer = _setup_obs(args)
    service = _make_sharded_service(args, audit=audit)
    try:
        if args.port is not None:
            import asyncio

            from ..service import ServiceFrontend

            frontend = ServiceFrontend(service, host=args.host, port=args.port)

            async def run() -> None:
                port = await frontend.start()
                print(json.dumps({"listening": {"host": args.host, "port": port,
                                                "shards": args.shards}}),
                      flush=True)
                await frontend.serve_forever()

            try:
                asyncio.run(run())
            except KeyboardInterrupt:
                pass
            return 0

        try:
            records = [load_series_file(path) for path in args.series_files]
        except (OSError, ValueError) as error:
            raise SystemExit(str(error) or type(error).__name__)
        longest = max(len(record.series) for record in records)
        for start in range(0, longest, args.chunk):
            for record in records:
                chunk = record.series[start:start + args.chunk]
                if len(chunk):
                    service.append(record.name, chunk)
            for update in service.flush().values():
                print(json.dumps(update), flush=True)
        stats = service.stats()
        rows = sorted(stats["totals"].items()) + [
            ("shards", stats["shards"]),
            ("restarts", stats["restarts"]),
        ]
        print(format_table(["counter", "value"], rows), file=sys.stderr)
        return 0
    finally:
        _teardown_obs(args, audit, tracer, previous_tracer,
                      metrics_text=(service.metrics_text()
                                    if args.metrics_output is not None else None))
        service.close()


def _frontend_request(host: str, port: int, op: str, **fields: object):
    """One length-prefixed JSON request to a running serve-sharded front end."""
    import socket

    from ..service.transport import encode_message, recv_message

    try:
        with socket.create_connection((host, port), timeout=30.0) as sock:
            sock.sendall(encode_message({"op": op, **fields}))
            response = recv_message(sock)
    except OSError as error:
        raise SystemExit(f"cannot reach {host}:{port}: {error}")
    if response is None:
        raise SystemExit("connection closed by the server")
    if isinstance(response, dict) and "error" in response:
        raise SystemExit(f"server error: {response['error']}")
    return response


def _cmd_train_cost_model(args: argparse.Namespace) -> int:
    from ..cascade import CostModel, harvest_cost_observations
    from ..obs import AuditLog

    events = []
    for path in args.audit_files:
        try:
            events.extend(AuditLog.read(path))
        except OSError as error:
            raise SystemExit(str(error))
        except ValueError as error:
            raise SystemExit(f"malformed audit log {path}: {error}")
    observations = harvest_cost_observations(events)
    if not observations:
        raise SystemExit("no cost_observation events found — record some by "
                         "running stream/serve-sharded/batch-select with --audit "
                         "(add python -X tracemalloc for peak-memory labels)")

    if args.harvest_only:
        for obs in observations:
            print(json.dumps(obs.as_dict()))
        print(f"harvested {len(observations)} cost observations from "
              f"{len(args.audit_files)} audit file(s)", file=sys.stderr)
        return 0

    if args.output is None:
        raise SystemExit("--output is required (or pass --harvest-only)")
    model = CostModel.fit(observations, window=args.window)
    model.save(args.output)
    forwards = sum(1 for o in observations if o.kind == "selector_forward")
    detections = len(observations) - forwards
    rows = [[tier, f"{a:.4f}", f"{b:.6f}"]
            for tier, (a, b) in sorted(model.latency.items())]
    print(format_table(["tier", "intercept ms", "ms per window"], rows))
    print(f"fitted cost model on {forwards} forward + {detections} detection "
          f"observations ({len(model.detector_latency)} detector heads) "
          f"-> {args.output}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from ..obs import AuditLog, explain_from_audit, format_explain

    if args.audit is not None:
        try:
            events = AuditLog.read(args.audit)
        except OSError as error:
            raise SystemExit(str(error))
        try:
            info = explain_from_audit(events, args.stream)
        except ValueError as error:
            raise SystemExit(str(error))
    elif args.port is not None:
        info = _frontend_request(args.host, args.port, "explain",
                                 stream=args.stream).get("explain")
        if info is None:
            raise SystemExit(f"unknown stream: {args.stream}")
    else:
        raise SystemExit("explain needs --audit FILE or --port PORT")
    if args.json:
        print(json.dumps(info))
    else:
        print(format_explain(info))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    text = str(_frontend_request(args.host, args.port, "metrics").get("metrics", ""))
    sys.stdout.write(text if text.endswith("\n") or not text else text + "\n")
    return 0


def _cmd_list_selectors(args: argparse.Namespace) -> int:
    store = SelectorStore(args.store)
    infos = store.list()
    if not infos:
        print(f"no selectors stored in {args.store}")
        return 0
    rows = [[info.name, info.selector_type, "NN" if info.is_neural else "non-NN", info.created_at]
            for info in infos]
    print(format_table(["Name", "Type", "Kind", "Created"], rows))
    return 0


_COMMANDS = {
    "generate-data": _cmd_generate_data,
    "label": _cmd_label,
    "train": _cmd_train,
    "distill": _cmd_distill,
    "quantize-teacher": _cmd_quantize_teacher,
    "evaluate": _cmd_evaluate,
    "select": _cmd_select,
    "detect": _cmd_detect,
    "batch-select": _cmd_batch_select,
    "serve": _cmd_serve,
    "stream": _cmd_stream,
    "serve-sharded": _cmd_serve_sharded,
    "train-cost-model": _cmd_train_cost_model,
    "explain": _cmd_explain,
    "metrics": _cmd_metrics,
    "list-selectors": _cmd_list_selectors,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
