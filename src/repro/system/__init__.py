"""``repro.system`` — the end-to-end TSAD model selection system.

Implements the architecture of Fig. 1: selector learning (via
:mod:`repro.core`), selector management (:class:`SelectorStore`), model
selection and anomaly detection (:class:`ModelSelectionPipeline`) plus the
reporting helpers the benchmark harness uses.  High-traffic serving
(batched + cached selection) lives in the sibling :mod:`repro.serving`
package; :meth:`ModelSelectionPipeline.as_service` bridges the two.
"""

from .anomaly_detection import DetectionResult, compare_models, run_detection
from .pipeline import ModelSelectionPipeline, PipelineConfig
from .reporting import format_cache_stats, format_markdown_table, format_table, per_dataset_table
from .selector_store import SelectorStore, StoredSelectorInfo

__all__ = [
    "DetectionResult", "compare_models", "run_detection",
    "ModelSelectionPipeline", "PipelineConfig",
    "format_cache_stats", "format_markdown_table", "format_table", "per_dataset_table",
    "SelectorStore", "StoredSelectorInfo",
]
