"""Plain-text reporting helpers used by the examples and the benchmark harness.

The benchmarks print the same rows the paper's tables report; these helpers
format them consistently (fixed-width ASCII and Markdown)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def _render_cell(value: object, float_format: str) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return float_format.format(value)
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.4f}") -> str:
    """Render a fixed-width ASCII table.

    NaN floats render as ``n/a``; rows longer than the header are padded
    with unnamed columns rather than raising.
    """
    str_rows = [[_render_cell(v, float_format) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        while len(widths) < len(row):  # ragged row: grow unnamed columns
            widths.append(0)
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                          float_format: str = "{:.4f}") -> str:
    """Render a GitHub-flavoured Markdown table (NaN floats as ``n/a``)."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_render_cell(v, float_format) for v in row) + " |")
    return "\n".join(lines)


def format_cache_stats(stats, throughput: Optional[Dict[str, float]] = None) -> str:
    """Render serving-cache counters (and optional series/sec figures).

    ``stats`` is a :class:`repro.serving.CacheStats` (or ``None`` when the
    cache is disabled); ``throughput`` maps a label (e.g. ``"cold batch"``)
    to a series-per-second rate.  Used by the ``batch-select``/``serve``
    CLI commands and the serving benchmark.  A hit rate with zero lookups
    renders as ``n/a`` instead of a misleading ``0.0000``.
    """
    if stats is None:
        return format_table(["counter", "value"], [["cache", "disabled"]])
    hit_rate: object = stats.hit_rate if stats.lookups else "n/a"
    rows: List[List[object]] = [
        ["cache lookups", stats.lookups],
        ["cache hits", stats.hits],
        ["cache misses", stats.misses],
        ["hit rate", hit_rate],
        ["evictions", stats.evictions],
        ["entries", f"{stats.size}/{stats.capacity}"],
    ]
    for label, rate in (throughput or {}).items():
        rows.append([f"{label} throughput", f"{rate:.1f} series/s"])
    return format_table(["counter", "value"], rows)


def per_dataset_table(results: Dict[str, Dict[str, float]], datasets: Optional[List[str]] = None,
                      include_average: bool = True) -> str:
    """Format {method: {dataset: score}} as a dataset-by-method table.

    This is the layout of the paper's Tables 6-9: one row per dataset, one
    column per method, plus an average row.
    """
    methods = list(results)
    if datasets is None:
        datasets = sorted({d for scores in results.values() for d in scores})
    rows = []
    for dataset in datasets:
        rows.append([dataset] + [results[m].get(dataset, float("nan")) for m in methods])
    if include_average:
        averages = []
        for method in methods:
            values = [results[method][d] for d in datasets if d in results[method]]
            averages.append(sum(values) / len(values) if values else float("nan"))
        rows.append(["Average"] + averages)
    return format_table(["Dataset"] + methods, rows)
