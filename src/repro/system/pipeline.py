"""End-to-end TSAD model selection pipeline.

Wires the system components of Fig. 1 together: historical data → oracle
labelling (Selector Learning's training knowledge) → windowed selector
dataset → selector learning (optionally with KDSelector modules) → model
selection for new series → anomaly detection with the selected model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.config import TrainerConfig
from ..data.records import TimeSeriesRecord
from ..data.windows import SelectorDataset, build_selector_dataset, extract_windows
from ..detectors.base import AnomalyDetector, make_default_model_set
from ..eval.evaluation import SelectionEvaluation, evaluate_selection, predict_for_series
from ..eval.oracle import Oracle
from ..selectors.base import Selector, make_selector
from ..selectors.nn_selector import NNSelector
from .anomaly_detection import DetectionResult, run_detection


@dataclass
class PipelineConfig:
    """Scale and protocol knobs of the end-to-end pipeline."""

    window: int = 64
    stride: Optional[int] = 32
    detector_window: int = 24
    metric: str = "auc_pr"
    max_windows_per_series: Optional[int] = None
    cache_dir: Optional[Union[str, Path]] = None
    seed: int = 0
    #: thread count for oracle labelling fan-out (0 = sequential)
    max_workers: int = 0


class ModelSelectionPipeline:
    """Train selectors on historical data and apply them to new series."""

    def __init__(
        self,
        model_set: Optional[Dict[str, AnomalyDetector]] = None,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.model_set = model_set or make_default_model_set(window=self.config.detector_window, fast=True)
        self.oracle = Oracle(self.model_set, metric=self.config.metric, cache_dir=self.config.cache_dir,
                             max_workers=self.config.max_workers)
        self.selector: Optional[Selector] = None
        self.train_dataset: Optional[SelectorDataset] = None

    # ------------------------------------------------------------------ #
    # historical data preparation
    # ------------------------------------------------------------------ #
    @property
    def detector_names(self) -> List[str]:
        return self.oracle.detector_names

    def label_history(self, records: Sequence[TimeSeriesRecord]) -> np.ndarray:
        """Run the oracle over historical series (cached when possible)."""
        return self.oracle.performance_matrix(records)

    def prepare_training_data(
        self,
        records: Sequence[TimeSeriesRecord],
        performance_matrix: Optional[np.ndarray] = None,
    ) -> SelectorDataset:
        """Build (and remember) the windowed selector training dataset."""
        if performance_matrix is None:
            performance_matrix = self.label_history(records)
        self.train_dataset = build_selector_dataset(
            records,
            performance_matrix,
            self.detector_names,
            window=self.config.window,
            stride=self.config.stride,
            max_windows_per_series=self.config.max_windows_per_series,
            seed=self.config.seed,
        )
        return self.train_dataset

    # ------------------------------------------------------------------ #
    # selector learning
    # ------------------------------------------------------------------ #
    def train_selector(
        self,
        selector: Union[str, Selector],
        dataset: Optional[SelectorDataset] = None,
        trainer_config: Optional[TrainerConfig] = None,
        **selector_kwargs,
    ) -> Selector:
        """Train (and remember) a selector on the prepared dataset.

        ``selector`` may be a registry name or an already constructed
        instance.  ``trainer_config`` is forwarded to NN selectors to enable
        the KDSelector modules; non-NN selectors ignore it.
        """
        dataset = dataset or self.train_dataset
        if dataset is None:
            raise RuntimeError("call prepare_training_data() first or pass a dataset")
        if isinstance(selector, str):
            selector_kwargs.setdefault("n_classes", dataset.n_classes)
            if selector in ("ConvNet", "ResNet", "InceptionTime", "Transformer", "MLP", "LSTMSelector"):
                selector_kwargs.setdefault("window", dataset.windows.shape[1])
            selector = make_selector(selector, **selector_kwargs)

        if isinstance(selector, NNSelector):
            selector.fit(dataset, config=trainer_config)
        else:
            selector.fit(dataset)
        self.selector = selector
        return selector

    # ------------------------------------------------------------------ #
    # model selection & anomaly detection
    # ------------------------------------------------------------------ #
    def select_model(self, record: TimeSeriesRecord, aggregation: str = "vote") -> Dict[str, object]:
        """Predict the best TSAD model for one series (with vote breakdown)."""
        if self.selector is None:
            raise RuntimeError("no trained selector; call train_selector() first")
        choice, votes = predict_for_series(self.selector, record, self.config.window, aggregation)
        return {
            "selected_index": choice,
            "selected_model": self.detector_names[choice],
            "votes": {name: float(votes[i]) for i, name in enumerate(self.detector_names)},
        }

    def detect(self, record: TimeSeriesRecord, aggregation: str = "vote") -> DetectionResult:
        """Select a model for the series and run it (steps 2 + 3 of the demo)."""
        selection = self.select_model(record, aggregation)
        detector = self.model_set[selection["selected_model"]]
        return run_detection(record, detector, detector_name=selection["selected_model"])

    def evaluate(
        self,
        records: Sequence[TimeSeriesRecord],
        performance_matrix: Optional[np.ndarray] = None,
        aggregation: str = "vote",
    ) -> SelectionEvaluation:
        """Evaluate the trained selector over labelled test series."""
        if self.selector is None:
            raise RuntimeError("no trained selector; call train_selector() first")
        if performance_matrix is None:
            performance_matrix = self.oracle.performance_matrix(records)
        return evaluate_selection(
            self.selector,
            records,
            performance_matrix,
            self.detector_names,
            window=self.config.window,
            aggregation=aggregation,
        )

    # ------------------------------------------------------------------ #
    # serving hand-off
    # ------------------------------------------------------------------ #
    def as_service(self, **config_overrides):
        """Wrap the trained selector in a batched, cached serving front end.

        Returns a :class:`repro.serving.SelectionService` configured with
        this pipeline's window settings; keyword arguments override fields
        of :class:`repro.serving.ServingConfig` (e.g. ``cache_capacity``,
        ``max_workers``).  The service produces selections bitwise identical
        to :meth:`select_model`, but batched and cached.
        """
        from ..serving.service import SelectionService, ServingConfig

        if self.selector is None:
            raise RuntimeError("no trained selector; call train_selector() first")
        config_overrides.setdefault("window", self.config.window)
        config_overrides.setdefault("max_workers", self.config.max_workers)
        return SelectionService(
            self.selector, self.detector_names, ServingConfig(**config_overrides)
        )

    def as_stream_engine(self, score: bool = False,
                         model_set: Optional[Dict[str, AnomalyDetector]] = None,
                         **config_overrides):
        """Wrap the trained selector in an incremental multi-stream engine.

        Returns a :class:`repro.streaming.StreamEngine` configured with this
        pipeline's window settings; keyword arguments override fields of
        :class:`repro.streaming.StreamingConfig` (e.g. ``drift``,
        ``cache_capacity``, ``max_batch_windows``).  Online per-point
        scoring is opt-in: ``score=True`` scores with the pipeline's own
        model set, ``model_set=...`` with a custom one.  Note that
        globally-scored detectors re-run full detection over the whole
        prefix every ``rescore_every`` points — raise that knob for
        high-frequency streams.  As long as no drift re-selection narrows a
        stream's vote, the engine's selections are bitwise identical to
        :meth:`select_model` on the same prefix.
        """
        from ..streaming.engine import StreamEngine, StreamingConfig

        if self.selector is None:
            raise RuntimeError("no trained selector; call train_selector() first")
        # stride is intentionally left at None (= non-overlapping): that is
        # the prediction-time windowing of select_model/predict_for_series
        # (the pipeline's stride only shapes the *training* dataset).
        config_overrides.setdefault("window", self.config.window)
        config_overrides.setdefault("max_workers", self.config.max_workers)
        if score and model_set is None:
            model_set = self.model_set
        return StreamEngine(
            self.selector,
            self.detector_names,
            StreamingConfig(**config_overrides),
            model_set=model_set,
        )

    # ------------------------------------------------------------------ #
    def windows_for(self, record: TimeSeriesRecord) -> np.ndarray:
        """The selector-input windows of one series (for inspection / UI)."""
        return extract_windows(record.series, self.config.window, stride=self.config.window)
