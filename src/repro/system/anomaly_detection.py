"""Anomaly detection runner: apply a (selected) TSAD model and report metrics.

This is the "Anomaly Detection" component of the demo system: given a time
series and a chosen detector, it produces the point-wise anomaly scores and
the evaluation metrics that the system visualises, and it can run several
models side by side for comparative analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..data.records import TimeSeriesRecord
from ..detectors.base import AnomalyDetector
from ..eval.metrics import detection_report


@dataclass
class DetectionResult:
    """Scores and metrics of running one detector on one series."""

    series_name: str
    detector_name: str
    scores: np.ndarray
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def auc_pr(self) -> float:
        return self.metrics.get("auc_pr", float("nan"))


def run_detection(record: TimeSeriesRecord, detector: AnomalyDetector,
                  detector_name: Optional[str] = None) -> DetectionResult:
    """Run one detector on one labelled series and compute its metrics."""
    scores = detector.detect(record.series)
    metrics = detection_report(record.labels, scores) if record.labels.any() or True else {}
    return DetectionResult(
        series_name=record.name,
        detector_name=detector_name or detector.name,
        scores=scores,
        metrics=metrics,
    )


def compare_models(
    record: TimeSeriesRecord,
    model_set: Dict[str, AnomalyDetector],
    names: Optional[Sequence[str]] = None,
) -> Dict[str, DetectionResult]:
    """Run several candidate detectors on the same series (comparative analysis)."""
    names = list(names) if names is not None else list(model_set)
    results = {}
    for name in names:
        if name not in model_set:
            raise KeyError(f"detector {name!r} is not part of the model set")
        results[name] = run_detection(record, model_set[name], detector_name=name)
    return results
