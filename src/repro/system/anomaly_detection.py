"""Anomaly detection runner: apply a (selected) TSAD model and report metrics.

This is the "Anomaly Detection" component of the demo system: given a time
series and a chosen detector, it produces the point-wise anomaly scores and
the evaluation metrics that the system visualises, and it can run several
models side by side for comparative analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..data.records import TimeSeriesRecord
from ..detectors.base import AnomalyDetector
from ..eval.metrics import detection_report
from ..serving.workers import WorkerPool


@dataclass
class DetectionResult:
    """Scores and metrics of running one detector on one series."""

    series_name: str
    detector_name: str
    scores: np.ndarray
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def auc_pr(self) -> float:
        return self.metrics.get("auc_pr", float("nan"))


def run_detection(record: TimeSeriesRecord, detector: AnomalyDetector,
                  detector_name: Optional[str] = None) -> DetectionResult:
    """Run one detector on one series; metrics only when labels exist.

    Unlabeled series (no positive point in ``record.labels``) get an empty
    ``metrics`` dict — there is no ground truth to evaluate against.
    """
    scores = detector.detect(record.series)
    metrics = detection_report(record.labels, scores) if record.labels.any() else {}
    return DetectionResult(
        series_name=record.name,
        detector_name=detector_name or detector.name,
        scores=scores,
        metrics=metrics,
    )


def compare_models(
    record: TimeSeriesRecord,
    model_set: Dict[str, AnomalyDetector],
    names: Optional[Sequence[str]] = None,
    max_workers: int = 0,
    worker_mode: str = "thread",
) -> Dict[str, DetectionResult]:
    """Run several candidate detectors on the same series (comparative analysis).

    ``max_workers >= 2`` fans the detector runs out to a worker pool (the
    detectors are independent of each other); the default runs sequentially.
    ``worker_mode="process"`` forks the workers — worthwhile when the
    candidate set includes the GIL-bound neural detectors.
    """
    names = list(names) if names is not None else list(model_set)
    for name in names:
        if name not in model_set:
            raise KeyError(f"detector {name!r} is not part of the model set")
    pool = WorkerPool(max_workers, mode=worker_mode)
    results = pool.map(
        lambda name: run_detection(record, model_set[name], detector_name=name), names
    )
    return dict(zip(names, results))
