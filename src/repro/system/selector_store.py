"""Selector management: save, list, load and delete trained selectors.

Mirrors the "Selector Management" component of the demo system: users train
selectors, persist them under a name, and later reload them for model
selection without re-training.  NN selectors are stored as architecture
metadata plus a parameter archive; non-NN selectors are pickled.
"""

from __future__ import annotations

import json
import pickle
import shutil
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import nn
from ..selectors.base import Selector, make_selector
from ..selectors.nn_selector import NNSelector

PathLike = Union[str, Path]


@dataclass(frozen=True)
class StoredSelectorInfo:
    """Manifest entry describing one stored selector."""

    name: str
    selector_type: str
    is_neural: bool
    created_at: str
    metadata: Dict[str, object]


class SelectorStore:
    """A small on-disk registry of trained selectors."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    def _entry_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid selector name {name!r}")
        return self.root / name

    def save(self, name: str, selector: Selector, metadata: Optional[Dict[str, object]] = None,
             overwrite: bool = False) -> StoredSelectorInfo:
        """Persist a trained selector under ``name``."""
        entry = self._entry_dir(name)
        if entry.exists():
            if not overwrite:
                raise FileExistsError(f"selector {name!r} already exists (pass overwrite=True to replace)")
            shutil.rmtree(entry)
        entry.mkdir(parents=True)

        merged = dict(metadata or {})
        provenance = getattr(selector, "quant_provenance", None)
        if provenance and "quantization" not in merged:
            # compact manifest form: enough to audit the int8 payload
            # (the full per-conv scale table rides in encoder.npz metadata)
            merged["quantization"] = {
                key: provenance[key]
                for key in ("agreement", "act_scales_hash", "n_calibration",
                            "base_type", "n_quantized_convs", "n_folded_bns")
                if key in provenance
            }

        info = StoredSelectorInfo(
            name=name,
            selector_type=selector.name,
            is_neural=isinstance(selector, NNSelector),
            created_at=datetime.now(timezone.utc).isoformat(),
            metadata=merged,
        )

        if isinstance(selector, NNSelector):
            selector.build()
            arch = {
                "window": selector.window,
                "n_classes": selector.n_classes,
                "seed": selector.seed,
                "arch_kwargs": selector.arch_kwargs,
            }
            (entry / "architecture.json").write_text(json.dumps(arch, indent=2))
            nn.save_state(selector.encoder, entry / "encoder.npz",
                          metadata={"quant_provenance": provenance} if provenance else None)
            nn.save_state(selector.classifier, entry / "classifier.npz")
        else:
            with open(entry / "model.pkl", "wb") as handle:
                pickle.dump(selector, handle)

        (entry / "manifest.json").write_text(json.dumps({
            "name": info.name,
            "selector_type": info.selector_type,
            "is_neural": info.is_neural,
            "created_at": info.created_at,
            "metadata": info.metadata,
        }, indent=2))
        return info

    # ------------------------------------------------------------------ #
    def load(self, name: str) -> Selector:
        """Reconstruct a stored selector."""
        entry = self._entry_dir(name)
        manifest = self.info(name)

        if manifest.is_neural:
            arch = json.loads((entry / "architecture.json").read_text())
            selector = make_selector(
                manifest.selector_type,
                window=arch["window"],
                n_classes=arch["n_classes"],
                seed=arch["seed"],
                **arch["arch_kwargs"],
            )
            assert isinstance(selector, NNSelector)
            selector.build()
            state_meta = nn.load_state(selector.encoder, entry / "encoder.npz")
            nn.load_state(selector.classifier, entry / "classifier.npz")
            if state_meta.get("quant_provenance"):
                selector.quant_provenance = state_meta["quant_provenance"]
            return selector

        with open(entry / "model.pkl", "rb") as handle:
            return pickle.load(handle)

    def info(self, name: str) -> StoredSelectorInfo:
        entry = self._entry_dir(name)
        manifest_path = entry / "manifest.json"
        if not manifest_path.exists():
            raise KeyError(f"no stored selector named {name!r}")
        data = json.loads(manifest_path.read_text())
        return StoredSelectorInfo(
            name=data["name"],
            selector_type=data["selector_type"],
            is_neural=data["is_neural"],
            created_at=data["created_at"],
            metadata=data.get("metadata", {}),
        )

    def list(self) -> List[StoredSelectorInfo]:
        """All stored selectors, newest first."""
        infos = []
        for entry in self.root.iterdir():
            if entry.is_dir() and (entry / "manifest.json").exists():
                infos.append(self.info(entry.name))
        return sorted(infos, key=lambda info: info.created_at, reverse=True)

    def delete(self, name: str) -> None:
        entry = self._entry_dir(name)
        if not entry.exists():
            raise KeyError(f"no stored selector named {name!r}")
        shutil.rmtree(entry)

    def __contains__(self, name: str) -> bool:
        try:
            self.info(name)
            return True
        except (KeyError, ValueError):
            return False
