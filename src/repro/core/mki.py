"""Meta-Knowledge Integration (MKI).

Metadata about each series (domain, length, anomaly counts and durations)
is described in natural language, embedded with a *frozen* pre-trained text
encoder into ``z_K``, and tied to the selector's time-series feature
``z_T`` by maximising a mutual-information lower bound: both features are
projected into a shared space by two MLPs ``h_T`` and ``h_K`` and the
InfoNCE loss between the projected pairs is minimised (Sect. 3).

Adding ``lambda * L_MKI`` to the selector objective is all that is needed
to use the module, so it remains plug-and-play and architecture-agnostic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..text import HashingTextEncoder, TextEncoder
from .config import MKIConfig


class ProjectionHead(nn.Module):
    """One-hidden-layer MLP projection (256 hidden units, ReLU), as in the paper."""

    def __init__(self, in_dim: int, out_dim: int, hidden: int = 256) -> None:
        super().__init__()
        self.fc1 = nn.Linear(in_dim, hidden)
        self.fc2 = nn.Linear(hidden, out_dim)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.fc2(self.fc1(x).relu())


class MKIModule(nn.Module):
    """Holds the frozen text encoder and the trainable projections h_T / h_K."""

    def __init__(
        self,
        feature_dim: int,
        config: MKIConfig,
        text_encoder: Optional[TextEncoder] = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.text_encoder = text_encoder or HashingTextEncoder(dim=config.text_dim)
        self.h_t = ProjectionHead(feature_dim, config.projection_dim, hidden=config.projection_hidden)
        self.h_k = ProjectionHead(self.text_encoder.dim, config.projection_dim, hidden=config.projection_hidden)
        self._embedding_cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # frozen text encoding
    # ------------------------------------------------------------------ #
    def encode_texts(self, texts: Sequence[str]) -> np.ndarray:
        """Embed metadata texts with the frozen encoder (cached per string)."""
        missing = [text for text in texts if text not in self._embedding_cache]
        if missing:
            unique_missing = list(dict.fromkeys(missing))
            vectors = self.text_encoder.encode(unique_missing)
            for text, vector in zip(unique_missing, vectors):
                self._embedding_cache[text] = vector
        return np.stack([self._embedding_cache[text] for text in texts])

    # ------------------------------------------------------------------ #
    # loss
    # ------------------------------------------------------------------ #
    def loss(
        self,
        series_features: nn.Tensor,
        text_embeddings: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> nn.Tensor:
        """Per-batch InfoNCE loss between projected series and text features."""
        projected_series = self.h_t(series_features)
        projected_text = self.h_k(nn.Tensor(np.asarray(text_embeddings, dtype=np.float64)))
        return nn.info_nce(
            projected_series,
            projected_text,
            temperature=self.config.temperature,
            reduction="none",
            weights=weights,
        )

    def trainable_parameters(self) -> List[nn.Parameter]:
        """Parameters of the projections (the text encoder stays frozen)."""
        return self.h_t.parameters() + self.h_k.parameters()
