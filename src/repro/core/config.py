"""Configuration dataclasses of the KDSelector learning framework.

The defaults mirror the hyper-parameters reported in Sect. B.1 of the
paper: ``alpha`` and ``t_soft`` for PISL, projection dimension ``H``,
weight ``lambda`` and InfoNCE temperature for MKI, and pruning ratio ``r``,
LSH bits and bin count for PA.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class PISLConfig:
    """Performance-informed selector learning (soft labels)."""

    enabled: bool = True
    #: relative importance of the soft label vs the hard label (paper: alpha)
    alpha: float = 0.4
    #: softmax temperature applied to the performance scores (paper: t_soft)
    t_soft: float = 0.25


@dataclass(frozen=True)
class MKIConfig:
    """Meta-knowledge integration (InfoNCE between series and metadata)."""

    enabled: bool = True
    #: weight of L_MKI in the total loss (paper: lambda)
    weight: float = 0.78
    #: dimensionality of the shared projection space (paper: H, from {64, 256})
    projection_dim: int = 64
    #: hidden width of the projection MLPs h_T and h_K
    projection_hidden: int = 256
    #: temperature of the InfoNCE loss (paper: 0.1)
    temperature: float = 0.1
    #: dimensionality of the frozen text encoder output
    text_dim: int = 768


@dataclass(frozen=True)
class PruningConfig:
    """Pruning-based acceleration (PA) and the InfoBatch baseline."""

    #: "none", "infobatch" or "pa"
    method: str = "pa"
    #: probability of pruning a prunable sample (paper: r = 0.8)
    ratio: float = 0.8
    #: number of SimHash bits used to bucket similar samples (paper: 14)
    lsh_bits: int = 14
    #: number of equi-depth loss bins (paper: p = 8)
    n_bins: int = 8
    #: fraction of final epochs trained on the full data (InfoBatch's delta)
    full_data_last_fraction: float = 0.125

    def __post_init__(self) -> None:
        if self.method not in ("none", "infobatch", "pa"):
            raise ValueError("pruning method must be 'none', 'infobatch' or 'pa'")
        if not 0.0 <= self.ratio < 1.0:
            raise ValueError("pruning ratio must be in [0, 1)")


@dataclass(frozen=True)
class TrainerConfig:
    """Full configuration of :class:`repro.core.trainer.SelectorTrainer`."""

    epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    grad_clip: float = 5.0
    seed: int = 0
    #: fraction of windows held out for validation curves (0 disables)
    val_fraction: float = 0.0
    verbose: bool = False

    pisl: PISLConfig = field(default_factory=lambda: PISLConfig(enabled=False))
    mki: MKIConfig = field(default_factory=lambda: MKIConfig(enabled=False))
    pruning: PruningConfig = field(default_factory=lambda: PruningConfig(method="none"))

    def replace(self, **overrides) -> "TrainerConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **overrides)

    @property
    def uses_knowledge(self) -> bool:
        return self.pisl.enabled or self.mki.enabled


def standard_config(**overrides) -> TrainerConfig:
    """The standard NN selector learning framework (hard labels, no pruning)."""
    return TrainerConfig(**overrides)


def kdselector_config(
    epochs: int = 10,
    batch_size: int = 64,
    lr: float = 1e-3,
    alpha: float = 0.4,
    t_soft: float = 0.25,
    mki_weight: float = 0.78,
    projection_dim: int = 64,
    pruning: str = "pa",
    pruning_ratio: float = 0.8,
    lsh_bits: int = 14,
    n_bins: int = 8,
    seed: int = 0,
    **overrides,
) -> TrainerConfig:
    """The full KDSelector configuration (PISL + MKI + PA) with paper defaults."""
    return TrainerConfig(
        epochs=epochs,
        batch_size=batch_size,
        lr=lr,
        seed=seed,
        pisl=PISLConfig(enabled=True, alpha=alpha, t_soft=t_soft),
        mki=MKIConfig(enabled=True, weight=mki_weight, projection_dim=projection_dim),
        pruning=PruningConfig(method=pruning, ratio=pruning_ratio, lsh_bits=lsh_bits, n_bins=n_bins),
        **overrides,
    )
