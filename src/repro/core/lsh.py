"""Locality-sensitive hashing used by the Pruning-based Acceleration module.

PA needs to find groups of training samples that are similar *to each
other* cheaply and only once (sample values never change during training),
so it hashes every sample with SimHash (random-hyperplane LSH, Charikar
2002): samples whose signed projections agree on all bits land in the same
hash table.  Within a table, cosine-similar samples collide with high
probability.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np


class SimHashLSH:
    """Random-hyperplane LSH producing ``n_bits``-bit signatures."""

    def __init__(self, n_bits: int = 14, seed: int = 0) -> None:
        if not 1 <= n_bits <= 63:
            raise ValueError("n_bits must be between 1 and 63")
        self.n_bits = n_bits
        self.seed = seed
        self._hyperplanes: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "SimHashLSH":
        """Draw the random hyperplanes for inputs with ``x.shape[1]`` features."""
        x = np.asarray(x, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._hyperplanes = rng.normal(0.0, 1.0, size=(x.shape[1], self.n_bits))
        return self

    def signatures(self, x: np.ndarray) -> np.ndarray:
        """Integer signature of every row of ``x``."""
        if self._hyperplanes is None:
            raise RuntimeError("SimHashLSH must be fitted before hashing")
        x = np.asarray(x, dtype=np.float64)
        bits = (x @ self._hyperplanes) >= 0.0
        powers = 1 << np.arange(self.n_bits, dtype=np.int64)
        return (bits.astype(np.int64) @ powers).astype(np.int64)

    def fit_signatures(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).signatures(x)

    @staticmethod
    def group_by_signature(signatures: np.ndarray) -> Dict[int, np.ndarray]:
        """Map signature -> indices of the samples hashed to it."""
        signatures = np.asarray(signatures)
        order = np.argsort(signatures, kind="mergesort")
        sorted_sigs = signatures[order]
        boundaries = np.flatnonzero(np.diff(sorted_sigs)) + 1
        groups = np.split(order, boundaries)
        return {int(signatures[g[0]]): g for g in groups}


def bucket_indices(
    signatures: np.ndarray,
    losses: np.ndarray,
    indices: np.ndarray,
    n_bins: int,
) -> List[np.ndarray]:
    """Split ``indices`` into PA buckets.

    A bucket is the intersection of one LSH hash table (samples similar in
    value) and one equi-depth bin of the current average loss (samples
    similar in loss).  Only buckets with more than one member are returned,
    because singleton buckets have nothing redundant to prune.
    """
    indices = np.asarray(indices, dtype=int)
    if len(indices) == 0:
        return []
    losses = np.asarray(losses, dtype=np.float64)
    local_losses = losses[indices]

    # Equi-depth loss bins over the candidate samples.
    n_bins = max(1, min(n_bins, len(indices)))
    quantiles = np.quantile(local_losses, np.linspace(0.0, 1.0, n_bins + 1)[1:-1]) if n_bins > 1 else []
    bin_ids = np.searchsorted(quantiles, local_losses, side="right")

    local_sigs = np.asarray(signatures)[indices]
    buckets: Dict[tuple, List[int]] = {}
    for position, index in enumerate(indices):
        key = (int(local_sigs[position]), int(bin_ids[position]))
        buckets.setdefault(key, []).append(int(index))
    return [np.asarray(members, dtype=int) for members in buckets.values() if len(members) > 1]
