"""Performance-Informed Selector Learning (PISL).

The detection performance of *all* candidate models — not just the identity
of the best one — is knowledge that the standard hard-label framework
throws away.  PISL converts each performance vector ``P(M_j(T_i))`` into a
probability distribution over models with a temperature-controlled softmax
and uses it as a soft training target (Sect. 3 of the paper):

``p_i = softmax_j( P(M_j(T_i)) / t_soft )``

``L_PISL`` is the cross entropy between the predicted distribution and
``p_i``; the total objective is ``(1 - alpha) L_CE + alpha L_PISL``.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import PISLConfig


def performance_to_soft_labels(performances: np.ndarray, t_soft: float = 0.25) -> np.ndarray:
    """Turn per-sample performance vectors into soft label distributions.

    Parameters
    ----------
    performances:
        Array (N, m): detection performance of each of the ``m`` TSAD models
        on the series each sample came from.
    t_soft:
        Softmax temperature.  Smaller values sharpen the distribution toward
        the best model; larger values spread probability mass across models
        with similar performance.
    """
    performances = np.asarray(performances, dtype=np.float64)
    if performances.ndim != 2:
        raise ValueError("performances must be a 2-D (n_samples, n_models) array")
    if t_soft <= 0:
        raise ValueError("t_soft must be positive")
    scaled = performances / t_soft
    scaled = scaled - scaled.max(axis=1, keepdims=True)
    exp = np.exp(scaled)
    return exp / exp.sum(axis=1, keepdims=True)


class PISLLoss:
    """Callable computing the mixed hard/soft objective of PISL.

    With ``alpha = 0`` this degrades exactly to the standard hard-label
    cross entropy, which is how the module stays plug-and-play.
    """

    def __init__(self, config: PISLConfig) -> None:
        self.config = config

    def soft_labels(self, performances: np.ndarray) -> np.ndarray:
        return performance_to_soft_labels(performances, self.config.t_soft)

    def __call__(
        self,
        logits: nn.Tensor,
        hard_labels: np.ndarray,
        soft_labels: np.ndarray | None,
        weights: np.ndarray | None = None,
    ) -> nn.Tensor:
        """Per-sample loss tensor (reduction is left to the trainer)."""
        hard = nn.cross_entropy(logits, hard_labels, reduction="none", weights=weights)
        if not self.config.enabled or soft_labels is None or self.config.alpha <= 0.0:
            return hard
        soft = nn.soft_cross_entropy(logits, soft_labels, reduction="none", weights=weights)
        alpha = self.config.alpha
        return hard * (1.0 - alpha) + soft * alpha
