"""Dynamic training-data pruning: InfoBatch and the proposed PA.

Both pruners follow the same protocol inside the training loop:

1. ``setup(sample_features)`` is called once before training (PA fits its
   LSH tables here — sample values are invariant during training).
2. At each epoch, ``select(epoch)`` returns the indices of the samples to
   iterate over and a per-sample gradient-rescaling weight.
3. After the epoch, ``update(indices, losses)`` records the per-sample
   losses so the running average loss stays current.

InfoBatch (Qin et al., ICLR'24) prunes only *well-learned* samples (average
loss below the mean).  PA additionally prunes *redundant hard* samples:
those with above-mean loss that are similar both in value (same LSH table)
and in loss (same equi-depth bin) — per the paper's analysis (Sect. A.1)
such samples contribute nearly identical gradients, so dropping a random
fraction of each bucket and rescaling the rest preserves the expected
objective (Sect. A.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from .config import PruningConfig
from .lsh import SimHashLSH, bucket_indices


class SamplePruner(ABC):
    """Base class of the per-epoch sample selection strategies."""

    def __init__(self, n_samples: int, config: PruningConfig, total_epochs: int, seed: int = 0) -> None:
        self.n_samples = n_samples
        self.config = config
        self.total_epochs = total_epochs
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._loss_sum = np.zeros(n_samples)
        self._loss_count = np.zeros(n_samples)
        #: fraction of the dataset used at each epoch (for reports / tests)
        self.kept_fraction_history: List[float] = []

    # ------------------------------------------------------------------ #
    def setup(self, sample_features: Optional[np.ndarray]) -> None:
        """Hook called once before training starts."""

    @abstractmethod
    def select(self, epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (indices, weights) of the samples used in this epoch."""

    def update(self, indices: np.ndarray, losses: np.ndarray) -> None:
        """Record the losses observed for ``indices`` during this epoch."""
        indices = np.asarray(indices, dtype=int)
        losses = np.asarray(losses, dtype=np.float64)
        self._loss_sum[indices] += losses
        self._loss_count[indices] += 1.0

    # ------------------------------------------------------------------ #
    @property
    def average_losses(self) -> np.ndarray:
        """Per-sample average loss over the epochs seen so far (paper's L̄_i)."""
        counts = np.maximum(self._loss_count, 1.0)
        return self._loss_sum / counts

    @property
    def has_history(self) -> bool:
        return bool(self._loss_count.sum() > 0)

    def _record_kept(self, n_kept: int) -> None:
        self.kept_fraction_history.append(n_kept / max(self.n_samples, 1))

    def _in_full_data_phase(self, epoch: int) -> bool:
        """InfoBatch trains on the full data for the last few epochs."""
        start_full = int(np.ceil(self.total_epochs * (1.0 - self.config.full_data_last_fraction)))
        return epoch >= start_full


class NoPruning(SamplePruner):
    """Standard training: every sample, every epoch, unit weights."""

    def select(self, epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        del epoch
        indices = np.arange(self.n_samples)
        self._record_kept(len(indices))
        return indices, np.ones(self.n_samples)


class InfoBatchPruner(SamplePruner):
    """InfoBatch: prune well-learned samples, rescale the survivors."""

    def select(self, epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        if not self.has_history or self._in_full_data_phase(epoch):
            indices = np.arange(self.n_samples)
            self._record_kept(len(indices))
            return indices, np.ones(self.n_samples)

        avg = self.average_losses
        mean_loss = avg.mean()
        ratio = self.config.ratio

        below = np.flatnonzero(avg < mean_loss)
        above = np.flatnonzero(avg >= mean_loss)

        keep_mask = self._rng.random(len(below)) >= ratio
        kept_below = below[keep_mask]

        indices = np.concatenate([kept_below, above])
        weights = np.concatenate([
            np.full(len(kept_below), 1.0 / (1.0 - ratio)),
            np.ones(len(above)),
        ])
        order = np.argsort(indices)
        self._record_kept(len(indices))
        return indices[order], weights[order]


class PAPruner(InfoBatchPruner):
    """Pruning-based Acceleration: InfoBatch plus bucketed pruning of redundant hard samples."""

    def __init__(self, n_samples: int, config: PruningConfig, total_epochs: int, seed: int = 0) -> None:
        super().__init__(n_samples, config, total_epochs, seed)
        self._lsh = SimHashLSH(n_bits=config.lsh_bits, seed=seed)
        self._signatures: Optional[np.ndarray] = None

    def setup(self, sample_features: Optional[np.ndarray]) -> None:
        """Hash all samples once before training (their values never change)."""
        if sample_features is None:
            raise ValueError("PAPruner requires sample features for LSH bucketing")
        self._signatures = self._lsh.fit_signatures(np.asarray(sample_features, dtype=np.float64))

    def select(self, epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._signatures is None:
            raise RuntimeError("PAPruner.setup() must be called before select()")
        if not self.has_history or self._in_full_data_phase(epoch):
            indices = np.arange(self.n_samples)
            self._record_kept(len(indices))
            return indices, np.ones(self.n_samples)

        avg = self.average_losses
        mean_loss = avg.mean()
        ratio = self.config.ratio

        below = np.flatnonzero(avg < mean_loss)
        above = np.flatnonzero(avg >= mean_loss)

        # Well-learned samples: exactly InfoBatch (no bucketing).
        keep_mask = self._rng.random(len(below)) >= ratio
        kept_indices = [below[keep_mask]]
        kept_weights = [np.full(int(keep_mask.sum()), 1.0 / (1.0 - ratio))]

        # Hard samples: prune only inside buckets of mutually similar samples.
        buckets = bucket_indices(self._signatures, avg, above, self.config.n_bins)
        bucketed = np.concatenate(buckets) if buckets else np.asarray([], dtype=int)
        unbucketed = np.setdiff1d(above, bucketed, assume_unique=False)
        kept_indices.append(unbucketed)
        kept_weights.append(np.ones(len(unbucketed)))

        for bucket in buckets:
            bucket_keep = self._rng.random(len(bucket)) >= ratio
            if not bucket_keep.any():
                # Never drop a whole bucket: keep one member to represent it.
                bucket_keep[self._rng.integers(0, len(bucket))] = True
            survivors = bucket[bucket_keep]
            kept_indices.append(survivors)
            kept_weights.append(np.full(len(survivors), len(bucket) / len(survivors)))

        indices = np.concatenate(kept_indices)
        weights = np.concatenate(kept_weights)
        order = np.argsort(indices)
        self._record_kept(len(indices))
        return indices[order], weights[order]


def make_pruner(
    n_samples: int,
    config: PruningConfig,
    total_epochs: int,
    seed: int = 0,
) -> SamplePruner:
    """Factory mapping the configured method name to a pruner instance."""
    if config.method == "none":
        return NoPruning(n_samples, config, total_epochs, seed)
    if config.method == "infobatch":
        return InfoBatchPruner(n_samples, config, total_epochs, seed)
    if config.method == "pa":
        return PAPruner(n_samples, config, total_epochs, seed)
    raise ValueError(f"unknown pruning method {config.method!r}")
