"""``repro.core`` — the KDSelector learning framework.

The three plug-and-play modules of the paper live here:

* :mod:`repro.core.pisl` — Performance-Informed Selector Learning,
* :mod:`repro.core.mki` — Meta-Knowledge Integration,
* :mod:`repro.core.pruning` — Pruning-based Acceleration (and InfoBatch),

wired together by :class:`repro.core.trainer.SelectorTrainer` under the
configurations in :mod:`repro.core.config`.
"""

from .analysis import (
    SelectorDiagnostics,
    confusion_matrix,
    diagnose_selector,
    gradient_redundancy,
    per_class_accuracy,
    pruning_summary,
)
from .config import (
    MKIConfig,
    PISLConfig,
    PruningConfig,
    TrainerConfig,
    kdselector_config,
    standard_config,
)
from .inference import DEFAULT_PREDICT_BATCH_SIZE, batched_predict_proba
from .lsh import SimHashLSH, bucket_indices
from .tuning import PAPER_GRID, GridSearchResult, Trial, grid_search
from .mki import MKIModule, ProjectionHead
from .pisl import PISLLoss, performance_to_soft_labels
from .pruning import InfoBatchPruner, NoPruning, PAPruner, SamplePruner, make_pruner
from .trainer import SelectorTrainer, TrainingReport

__all__ = [
    "SelectorDiagnostics", "confusion_matrix", "diagnose_selector",
    "gradient_redundancy", "per_class_accuracy", "pruning_summary",
    "PAPER_GRID", "GridSearchResult", "Trial", "grid_search",
    "MKIConfig", "PISLConfig", "PruningConfig", "TrainerConfig",
    "kdselector_config", "standard_config",
    "DEFAULT_PREDICT_BATCH_SIZE", "batched_predict_proba",
    "SimHashLSH", "bucket_indices",
    "MKIModule", "ProjectionHead",
    "PISLLoss", "performance_to_soft_labels",
    "InfoBatchPruner", "NoPruning", "PAPruner", "SamplePruner", "make_pruner",
    "SelectorTrainer", "TrainingReport",
]
