"""Analysis utilities for selector training and the PA redundancy theory.

Two purposes:

* **Training introspection** — per-class accuracy and confusion matrices of
  a fitted selector, and summaries of what the pruner did per epoch.  These
  back the validation views of the demo system (loss/accuracy curves,
  top-k accuracy) with numbers instead of plots.
* **Empirical check of Sect. A.1** — the paper argues that samples that are
  similar in value and in loss contribute nearly identical gradients, which
  justifies pruning redundant bucket members.  :func:`gradient_redundancy`
  measures exactly that on a trained selector: the average gradient
  distance between samples that PA would place in the same bucket versus
  random sample pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..data.windows import SelectorDataset
from .config import PruningConfig
from .lsh import SimHashLSH, bucket_indices


# --------------------------------------------------------------------------- #
# classification introspection
# --------------------------------------------------------------------------- #
def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Counts[i, j] = samples of true class i predicted as class j."""
    y_true = np.asarray(y_true, dtype=int).ravel()
    y_pred = np.asarray(y_pred, dtype=int).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    counts = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(counts, (y_true, y_pred), 1)
    return counts


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Recall of each class (NaN-free: classes without samples report 0)."""
    counts = confusion_matrix(y_true, y_pred, n_classes)
    totals = counts.sum(axis=1)
    correct = np.diag(counts)
    return np.where(totals > 0, correct / np.maximum(totals, 1), 0.0)


@dataclass
class SelectorDiagnostics:
    """Classification diagnostics of a fitted selector on a dataset."""

    accuracy: float
    per_class_accuracy: np.ndarray
    confusion: np.ndarray
    class_names: List[str]

    def most_confused_pairs(self, top: int = 3) -> List[Tuple[str, str, int]]:
        """The off-diagonal (true, predicted, count) cells with the most mass."""
        pairs = []
        for i in range(len(self.class_names)):
            for j in range(len(self.class_names)):
                if i != j and self.confusion[i, j] > 0:
                    pairs.append((self.class_names[i], self.class_names[j], int(self.confusion[i, j])))
        pairs.sort(key=lambda item: -item[2])
        return pairs[:top]


def diagnose_selector(selector, dataset: SelectorDataset, max_samples: Optional[int] = 2048,
                      seed: int = 0) -> SelectorDiagnostics:
    """Evaluate a fitted selector's window-level classification behaviour."""
    indices = np.arange(len(dataset))
    if max_samples is not None and len(indices) > max_samples:
        indices = np.random.default_rng(seed).choice(indices, size=max_samples, replace=False)
    windows = dataset.windows[indices]
    labels = dataset.hard_labels[indices]
    predictions = selector.predict_proba(windows).argmax(axis=1)
    counts = confusion_matrix(labels, predictions, dataset.n_classes)
    return SelectorDiagnostics(
        accuracy=float((predictions == labels).mean()),
        per_class_accuracy=per_class_accuracy(labels, predictions, dataset.n_classes),
        confusion=counts,
        class_names=list(dataset.detector_names),
    )


# --------------------------------------------------------------------------- #
# pruning introspection
# --------------------------------------------------------------------------- #
def pruning_summary(kept_fraction_history: Sequence[float]) -> Dict[str, float]:
    """Aggregate what a pruner did over the epochs."""
    history = np.asarray(list(kept_fraction_history), dtype=np.float64)
    if history.size == 0:
        return {"epochs": 0, "mean_kept": 1.0, "min_kept": 1.0, "total_saved": 0.0}
    return {
        "epochs": int(history.size),
        "mean_kept": float(history.mean()),
        "min_kept": float(history.min()),
        "total_saved": float(1.0 - history.mean()),
    }


# --------------------------------------------------------------------------- #
# empirical check of the Sect. A.1 redundancy argument
# --------------------------------------------------------------------------- #
def _per_sample_gradient(selector, window: np.ndarray, label: int) -> np.ndarray:
    """Flattened gradient of the CE loss of one sample w.r.t. all parameters."""
    for p in selector.parameters():
        p.grad = None
    logits, _ = selector.forward(window[None, :])
    loss = nn.cross_entropy(logits, np.array([label]))
    loss.backward()
    pieces = []
    for p in selector.parameters():
        grad = p.grad if p.grad is not None else np.zeros_like(p.data)
        pieces.append(grad.ravel())
    return np.concatenate(pieces)


def gradient_redundancy(
    selector,
    dataset: SelectorDataset,
    losses: np.ndarray,
    config: Optional[PruningConfig] = None,
    max_pairs: int = 20,
    seed: int = 0,
) -> Dict[str, float]:
    """Compare gradient distances of PA-bucket pairs against random pairs.

    Returns the mean relative gradient distance ``||g_i - g_j|| / mean||g||``
    for (a) pairs of samples that fall into the same PA bucket (same LSH
    signature, same loss bin, above-average loss) and (b) random pairs.  The
    Sect. A.1 analysis predicts (a) < (b).
    """
    config = config or PruningConfig(method="pa", ratio=0.8, lsh_bits=8, n_bins=8)
    losses = np.asarray(losses, dtype=np.float64)
    if len(losses) != len(dataset):
        raise ValueError("losses must align with the dataset")
    rng = np.random.default_rng(seed)

    signatures = SimHashLSH(n_bits=config.lsh_bits, seed=seed).fit_signatures(dataset.windows)
    above = np.flatnonzero(losses >= losses.mean())
    buckets = bucket_indices(signatures, losses, above, config.n_bins)

    bucket_pairs: List[Tuple[int, int]] = []
    for bucket in buckets:
        for i in range(len(bucket) - 1):
            bucket_pairs.append((int(bucket[i]), int(bucket[i + 1])))
    rng.shuffle(bucket_pairs)
    bucket_pairs = bucket_pairs[:max_pairs]

    n = len(dataset)
    random_pairs = [(int(a), int(b)) for a, b in rng.integers(0, n, size=(max_pairs, 2)) if a != b]

    def mean_distance(pairs: List[Tuple[int, int]]) -> float:
        if not pairs:
            return float("nan")
        distances = []
        norms = []
        for i, j in pairs:
            gi = _per_sample_gradient(selector, dataset.windows[i], dataset.hard_labels[i])
            gj = _per_sample_gradient(selector, dataset.windows[j], dataset.hard_labels[j])
            distances.append(np.linalg.norm(gi - gj))
            norms.append(0.5 * (np.linalg.norm(gi) + np.linalg.norm(gj)))
        return float(np.mean(np.asarray(distances) / np.maximum(np.asarray(norms), 1e-12)))

    return {
        "bucket_pair_distance": mean_distance(bucket_pairs),
        "random_pair_distance": mean_distance(random_pairs),
        "n_bucket_pairs": float(len(bucket_pairs)),
        "n_random_pairs": float(len(random_pairs)),
    }
