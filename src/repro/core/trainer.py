"""Selector trainer implementing the KDSelector learning framework.

:class:`SelectorTrainer` trains any NN-based selector (encoder ``E_T`` +
linear classifier ``C_T``) with the standard SGD framework and, depending
on the configuration, enables the three plug-and-play modules of the paper:

* **PISL** — mixes hard-label cross entropy with the soft-label cross
  entropy derived from the full detector performance vectors.
* **MKI** — adds ``lambda * InfoNCE(h_T(z_T), h_K(z_K))`` where ``z_K`` is
  the frozen embedding of the metadata text.
* **PA / InfoBatch** — dynamically prunes samples each epoch and rescales
  the gradients of the survivors.

All three are independent: any subset can be switched on, with any encoder
architecture, which is exactly the plug-and-play property the paper
demonstrates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..data.windows import SelectorDataset
from ..text import TextEncoder
from .config import TrainerConfig
from .mki import MKIModule
from .pisl import PISLLoss
from .pruning import make_pruner


@dataclass
class TrainingReport:
    """Per-epoch curves and totals produced by :meth:`SelectorTrainer.fit`."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_train_accuracy: List[float] = field(default_factory=list)
    epoch_val_accuracy: List[float] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)
    epoch_samples_used: List[int] = field(default_factory=list)
    total_time: float = 0.0
    n_samples: int = 0
    config_summary: Dict[str, object] = field(default_factory=dict)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def total_samples_processed(self) -> int:
        return int(sum(self.epoch_samples_used))

    @property
    def pruned_fraction(self) -> float:
        """Fraction of sample visits skipped compared to full-data training."""
        full = self.n_samples * max(len(self.epoch_samples_used), 1)
        if full == 0:
            return 0.0
        return 1.0 - self.total_samples_processed / full

    def summary(self) -> Dict[str, object]:
        return {
            "epochs": len(self.epoch_losses),
            "final_loss": self.final_loss,
            "total_time_s": self.total_time,
            "pruned_fraction": self.pruned_fraction,
            "final_val_accuracy": self.epoch_val_accuracy[-1] if self.epoch_val_accuracy else None,
            **self.config_summary,
        }


class SelectorTrainer:
    """Trains an NN selector with any combination of PISL, MKI and PA."""

    def __init__(
        self,
        selector,
        config: Optional[TrainerConfig] = None,
        text_encoder: Optional[TextEncoder] = None,
    ) -> None:
        from ..selectors.nn_selector import NNSelector  # avoid an import cycle at module load

        if not isinstance(selector, NNSelector):
            raise TypeError(
                "SelectorTrainer only trains NN-based selectors; "
                f"got {type(selector).__name__} (non-NN selectors train via their own fit())"
            )
        self.selector = selector
        self.config = config or TrainerConfig()
        self._text_encoder = text_encoder
        self.mki: Optional[MKIModule] = None
        self.pisl = PISLLoss(self.config.pisl)

    # ------------------------------------------------------------------ #
    def fit(self, dataset: SelectorDataset) -> TrainingReport:
        """Run the configured training loop and return the training report."""
        config = self.config
        rng = np.random.default_rng(config.seed)

        if config.val_fraction > 0:
            train_set, val_set = dataset.train_val_split(config.val_fraction, seed=config.seed)
        else:
            train_set, val_set = dataset, None

        window_length = train_set.windows.shape[1]
        self.selector.build(window=window_length, n_classes=train_set.n_classes)
        self.selector.train_mode(True)

        # ---------------- knowledge preparation ---------------- #
        soft_labels = self.pisl.soft_labels(train_set.performances) if config.pisl.enabled else None

        text_embeddings = None
        if config.mki.enabled:
            self.mki = MKIModule(self.selector.feature_dim, config.mki, text_encoder=self._text_encoder)
            text_embeddings = self.mki.encode_texts(train_set.metadata_texts)

        # ---------------- pruning preparation ---------------- #
        pruner = make_pruner(len(train_set), config.pruning, config.epochs, seed=config.seed)
        sample_features = train_set.windows
        if text_embeddings is not None:
            # With MKI the training sample is X_i = {T_i, z_K_i} (paper, Sect. 3).
            sample_features = np.concatenate([train_set.windows, text_embeddings], axis=1)
        pruner.setup(sample_features)

        # ---------------- optimizer ---------------- #
        parameters = self.selector.parameters()
        if self.mki is not None:
            parameters = parameters + self.mki.trainable_parameters()
        optimizer = nn.Adam(parameters, lr=config.lr, weight_decay=config.weight_decay)

        report = TrainingReport(
            n_samples=len(train_set),
            config_summary={
                "pisl": config.pisl.enabled,
                "mki": config.mki.enabled,
                "pruning": config.pruning.method,
            },
        )

        start_total = time.perf_counter()
        for epoch in range(config.epochs):
            epoch_start = time.perf_counter()
            indices, weights = pruner.select(epoch)
            order = rng.permutation(len(indices))
            indices, weights = indices[order], weights[order]

            epoch_loss = 0.0
            epoch_count = 0
            observed_losses = np.zeros(len(indices))

            for start in range(0, len(indices), config.batch_size):
                batch_idx = indices[start:start + config.batch_size]
                batch_weights = weights[start:start + config.batch_size]

                logits, features = self.selector.forward(train_set.windows[batch_idx])
                per_sample = self.pisl(
                    logits,
                    train_set.hard_labels[batch_idx],
                    soft_labels[batch_idx] if soft_labels is not None else None,
                )
                if self.mki is not None:
                    mki_loss = self.mki.loss(features, text_embeddings[batch_idx])
                    per_sample = per_sample + mki_loss * config.mki.weight

                # Gradient rescaling: weighting the per-sample loss is equivalent
                # to multiplying the corresponding gradients (Sect. 3, PA).
                weighted = per_sample * nn.Tensor(batch_weights)
                loss = weighted.sum() * (1.0 / len(batch_idx))

                optimizer.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(config.grad_clip)
                optimizer.step()

                observed_losses[start:start + len(batch_idx)] = per_sample.numpy()
                epoch_loss += float(per_sample.numpy().sum())
                epoch_count += len(batch_idx)

            pruner.update(indices, observed_losses)

            report.epoch_losses.append(epoch_loss / max(epoch_count, 1))
            report.epoch_samples_used.append(int(epoch_count))
            report.epoch_times.append(time.perf_counter() - epoch_start)
            report.epoch_train_accuracy.append(self._accuracy(train_set, rng, max_samples=512))
            if val_set is not None and len(val_set):
                report.epoch_val_accuracy.append(self._accuracy(val_set, rng, max_samples=512))

            if config.verbose:
                val_msg = f" val_acc={report.epoch_val_accuracy[-1]:.3f}" if report.epoch_val_accuracy else ""
                print(
                    f"epoch {epoch + 1}/{config.epochs}: loss={report.epoch_losses[-1]:.4f} "
                    f"samples={epoch_count}/{len(train_set)}{val_msg}"
                )

        report.total_time = time.perf_counter() - start_total
        self.selector.train_mode(False)
        self.pruner_ = pruner
        return report

    # ------------------------------------------------------------------ #
    def _accuracy(self, dataset: SelectorDataset, rng: np.random.Generator, max_samples: int = 512) -> float:
        """Hard-label accuracy on (a subsample of) a dataset split."""
        if len(dataset) == 0:
            return 0.0
        if len(dataset) > max_samples:
            idx = rng.choice(len(dataset), size=max_samples, replace=False)
        else:
            idx = np.arange(len(dataset))
        self.selector.train_mode(False)
        predictions = self.selector.predict_proba(dataset.windows[idx]).argmax(axis=1)
        self.selector.train_mode(True)
        return float((predictions == dataset.hard_labels[idx]).mean())
