"""Hyper-parameter search over the KDSelector grids.

Sect. B.1 of the paper selects ``t_soft`` from {0.2, 0.22, 0.25}, ``alpha``
from {0.2, 0.4, 1.0}, ``lambda`` from {0.78, 1.0} and the projection
dimension ``H`` from {64, 256}.  :func:`grid_search` reproduces that
protocol: it trains one selector per grid point on the training windows and
scores it on a validation split (window-level hard-label accuracy by
default, or a user-supplied scorer), returning every trial so the search is
fully auditable.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..data.windows import SelectorDataset
from .config import MKIConfig, PISLConfig, TrainerConfig
from .trainer import SelectorTrainer

#: The paper's hyper-parameter grid (Sect. B.1).
PAPER_GRID: Dict[str, Sequence] = {
    "alpha": (0.2, 0.4, 1.0),
    "t_soft": (0.2, 0.22, 0.25),
    "mki_weight": (0.78, 1.0),
    "projection_dim": (64, 256),
}


@dataclass(frozen=True)
class Trial:
    """One grid point and its validation outcome."""

    params: Dict[str, object]
    score: float
    training_time_s: float


@dataclass
class GridSearchResult:
    """All trials of a grid search, sorted utilities included."""

    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        if not self.trials:
            raise RuntimeError("grid search produced no trials")
        return max(self.trials, key=lambda t: t.score)

    def top(self, k: int = 3) -> List[Trial]:
        return sorted(self.trials, key=lambda t: -t.score)[:k]

    def as_rows(self) -> List[List[object]]:
        """Rows (params..., score, time) for tabular reporting."""
        rows = []
        for trial in sorted(self.trials, key=lambda t: -t.score):
            rows.append([*(f"{k}={v}" for k, v in trial.params.items()), trial.score, trial.training_time_s])
        return rows


def _config_for(params: Mapping[str, object], base: TrainerConfig) -> TrainerConfig:
    """Translate a grid point into a TrainerConfig.

    A module is switched on when the grid tunes one of its hyper-parameters
    or when the base configuration already enables it; otherwise the base
    setting is kept (so a grid over PISL only does not silently enable MKI).
    """
    pisl_enabled = base.pisl.enabled or "alpha" in params or "t_soft" in params
    mki_enabled = base.mki.enabled or "mki_weight" in params or "projection_dim" in params
    pisl = PISLConfig(
        enabled=pisl_enabled,
        alpha=float(params.get("alpha", base.pisl.alpha)),
        t_soft=float(params.get("t_soft", base.pisl.t_soft)),
    )
    mki = MKIConfig(
        enabled=mki_enabled,
        weight=float(params.get("mki_weight", base.mki.weight)),
        projection_dim=int(params.get("projection_dim", base.mki.projection_dim)),
        projection_hidden=base.mki.projection_hidden,
        temperature=base.mki.temperature,
        text_dim=base.mki.text_dim,
    )
    return base.replace(pisl=pisl, mki=mki)


def default_validation_scorer(selector, validation: SelectorDataset) -> float:
    """Window-level hard-label accuracy on the validation split."""
    if len(validation) == 0:
        return 0.0
    predictions = selector.predict_proba(validation.windows).argmax(axis=1)
    return float((predictions == validation.hard_labels).mean())


def grid_search(
    selector_factory: Callable[[], object],
    dataset: SelectorDataset,
    grid: Optional[Mapping[str, Sequence]] = None,
    base_config: Optional[TrainerConfig] = None,
    val_fraction: float = 0.3,
    scorer: Optional[Callable[[object, SelectorDataset], float]] = None,
    seed: int = 0,
    verbose: bool = False,
) -> GridSearchResult:
    """Train one selector per grid point and score it on a validation split.

    ``selector_factory`` must return a *fresh* NN selector each time it is
    called, so that grid points do not share parameters.
    """
    grid = dict(PAPER_GRID if grid is None else grid)
    if not grid:
        raise ValueError("grid must contain at least one hyper-parameter")
    base_config = base_config or TrainerConfig(epochs=5, batch_size=64, seed=seed)
    scorer = scorer or default_validation_scorer

    train_split, val_split = dataset.train_val_split(val_fraction, seed=seed)
    if len(val_split) == 0:
        raise ValueError("validation split is empty; increase val_fraction or dataset size")

    keys = list(grid)
    result = GridSearchResult()
    for values in itertools.product(*(grid[key] for key in keys)):
        params = dict(zip(keys, values))
        config = _config_for(params, base_config)
        selector = selector_factory()
        start = time.perf_counter()
        SelectorTrainer(selector, config).fit(train_split)
        elapsed = time.perf_counter() - start
        score = float(scorer(selector, val_split))
        result.trials.append(Trial(params=params, score=score, training_time_s=elapsed))
        if verbose:
            print(f"grid point {params}: score={score:.4f} time={elapsed:.1f}s")
    return result
