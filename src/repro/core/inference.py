"""Batched selector inference — the shared predict path of the system.

Selector forward passes are memory-bound: a serving batch can stack tens of
thousands of windows, far more than the NN substrate should materialise
activations for at once.  :func:`batched_predict_proba` runs any per-window
probability function in fixed-size chunks into a pre-allocated output, so
the one-shot pipeline, the trainer's validation pass and the serving
layer's batch path all share the same inference loop.

Chunking never changes results: every selector's probability function is
row-independent (each window's class distribution depends only on that
window), so the chunk boundaries are a pure memory/latency trade-off.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Default number of windows per inference chunk.  Measured on the conv
#: selectors, 32-64 windows keep the im2col working set inside cache;
#: larger chunks are slower per window, smaller ones pay Python overhead.
DEFAULT_PREDICT_BATCH_SIZE = 64


def batched_predict_proba(
    proba_fn: Callable[[np.ndarray], np.ndarray],
    windows: np.ndarray,
    n_classes: int,
    batch_size: int = DEFAULT_PREDICT_BATCH_SIZE,
) -> np.ndarray:
    """Apply a per-window probability function in fixed-size chunks.

    ``proba_fn`` maps a (B, ...) slice of ``windows`` to a (B, n_classes)
    probability matrix; the slices are concatenated into one (N, n_classes)
    output.  ``batch_size <= 0`` runs everything in a single chunk.
    """
    windows = np.asarray(windows)
    if batch_size <= 0:
        batch_size = max(len(windows), 1)
    proba = np.empty((len(windows), n_classes), dtype=np.float64)
    for start in range(0, len(windows), batch_size):
        chunk = windows[start:start + batch_size]
        proba[start:start + len(chunk)] = proba_fn(chunk)
    return proba
