"""Batched selector inference — the shared predict path of the system.

Selector forward passes are memory-bound: a serving batch can stack tens of
thousands of windows, far more than the NN substrate should materialise
activations for at once.  :func:`batched_predict_proba` runs any per-window
probability function in fixed-size chunks into a pre-allocated output, so
the one-shot pipeline, the trainer's validation pass and the serving and
streaming layers all share the same inference loop.

Chunking never changes results — but that guarantee has to be *engineered*,
not assumed.  Row-independence of the maths (each window's class
distribution depends only on that window) is necessary but not sufficient:
BLAS GEMM pick their blocking by matrix shape, so the same row can produce
bits an ulp apart inside a 5-row batch and a 64-row batch.  The loop below
therefore evaluates **every** chunk at exactly ``batch_size`` rows, padding
the final partial chunk (the pad rows are discarded) — a row's bits then
depend only on its own values and the chunk width, never on how many
windows happened to arrive together.  This is what lets the streaming
engine classify windows tick by tick and still match a from-scratch batch
run bitwise.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Default number of windows per inference chunk.  Measured on the conv
#: selectors, 32-64 windows keep the im2col working set inside cache;
#: larger chunks are slower per window, smaller ones pay Python overhead.
DEFAULT_PREDICT_BATCH_SIZE = 64


def batched_predict_proba(
    proba_fn: Callable[[np.ndarray], np.ndarray],
    windows: np.ndarray,
    n_classes: int,
    batch_size: int = DEFAULT_PREDICT_BATCH_SIZE,
) -> np.ndarray:
    """Apply a per-window probability function in fixed-size chunks.

    ``proba_fn`` maps a (B, ...) slice of ``windows`` to a (B, n_classes)
    probability matrix; the slices are concatenated into one (N, n_classes)
    output.  A final partial chunk is padded up to ``batch_size`` rows
    (repeating its last row) and the pad outputs dropped, so each row's
    result is bitwise independent of the total window count.
    ``batch_size <= 0`` runs everything in a single un-padded chunk.
    """
    windows = np.asarray(windows)
    proba = np.empty((len(windows), n_classes), dtype=np.float64)
    if batch_size <= 0:
        if len(windows):
            proba[:] = proba_fn(windows)  # single chunk; assignment checks the shape
        return proba
    for start in range(0, len(windows), batch_size):
        chunk = windows[start:start + batch_size]
        if len(chunk) < batch_size:
            pad = np.repeat(chunk[-1:], batch_size - len(chunk), axis=0)
            proba[start:start + len(chunk)] = proba_fn(
                np.concatenate([chunk, pad]))[: len(chunk)]
        else:
            proba[start:start + len(chunk)] = proba_fn(chunk)
    return proba
