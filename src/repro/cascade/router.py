"""Confidence-gated cascade routing with multi-objective SLO admission.

The router implements the learned-optimizer idea of ROADMAP item 2 on top
of the existing selector tiers:

* **Cascade** — the cheap tier (student / student-int8) classifies every
  window; rows whose top-1 probability *margin* (top1 − top2) clears a
  calibrated threshold keep the cheap answer, the uncertain rest escalates
  to the teacher.  The margin decision is **per window row** and depends
  only on that row's content (the fast tier's forward path is chunk-padded
  and row-bit-independent), so the escalation *set* — and therefore the
  escalation rate — is invariant to chunking, tick boundaries and shard
  assignment.
* **Deterministic tie-breaking** — a row whose margin lands *exactly* on
  the threshold is routed by a seeded blake2b hash of the row's bytes, so
  selections stay reproducible run-to-run and identical across shards,
  with no RNG state threaded through the serving layers.
* **SLO admission** — given a window count and optional
  ``latency_slo_ms`` / ``memory_budget_mb``, :meth:`CascadeRouter.admit`
  prices the candidate plans (``teacher`` / ``cascade`` / ``fast``)
  through the :class:`repro.cascade.CostModel` and picks the best
  predicted-quality plan that fits.  When nothing fits it degrades to the
  cheapest plan and flags the decision as a fallback, which the serving
  layers audit and meter.  Admission is pure arithmetic over predicted
  costs — no clock ever feeds a routing decision.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.inference import DEFAULT_PREDICT_BATCH_SIZE
from ..selectors.base import Selector
from ..selectors.nn_selector import NNSelector
from .cost_model import CostModel

#: default margin threshold when neither the distill metadata nor the CLI
#: provides a calibrated one
DEFAULT_THRESHOLD = 0.1

#: candidate plans, priced and ranked by :meth:`CascadeRouter.admit`
PLAN_NAMES = ("teacher", "cascade", "fast")


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of calibrating the margin threshold on held-out windows."""

    threshold: float
    escalation_rate: float
    #: fast↔teacher agreement over the *kept* (non-escalated) rows
    kept_agreement: float
    #: fast↔teacher agreement over all rows (the always-fast quality)
    overall_agreement: float

    def as_dict(self):
        return {
            "threshold": float(self.threshold),
            "escalation_rate": float(self.escalation_rate),
            "kept_agreement": float(self.kept_agreement),
            "overall_agreement": float(self.overall_agreement),
        }


@dataclass(frozen=True)
class AdmitDecision:
    """One admission verdict: which plan runs, at what predicted cost."""

    plan: str
    predicted_ms: float
    predicted_mb: float
    quality: float
    #: True when no plan fit the SLO and the cheapest ran anyway
    fallback: bool = False
    reason: str = ""

    def as_dict(self):
        return {
            "plan": self.plan,
            "predicted_ms": float(self.predicted_ms),
            "predicted_mb": float(self.predicted_mb),
            "quality": float(self.quality),
            "fallback": bool(self.fallback),
            "reason": self.reason,
        }


def margins(proba: np.ndarray) -> np.ndarray:
    """Per-row top-1 confidence margin (top1 − top2 probability)."""
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2 or proba.shape[1] < 2:
        return np.ones(len(proba), dtype=np.float64)
    part = np.partition(proba, proba.shape[1] - 2, axis=1)
    return part[:, -1] - part[:, -2]


def calibrate_margin_threshold(
    fast_proba: np.ndarray,
    slow_proba: np.ndarray,
    target_agreement: float = 0.995,
) -> CalibrationResult:
    """Smallest margin threshold whose kept rows agree with the teacher.

    Rows are ranked by descending fast-tier margin; the threshold is cut at
    the longest confident prefix whose fast↔teacher top-1 agreement stays
    at or above ``target_agreement``.  Rows tied on margin move across the
    boundary together (the runtime tie-break would otherwise split them
    nondeterministically between kept and escalated populations).
    """
    fast_proba = np.asarray(fast_proba, dtype=np.float64)
    slow_proba = np.asarray(slow_proba, dtype=np.float64)
    if len(fast_proba) != len(slow_proba):
        raise ValueError("fast/slow probability row counts differ")
    n = len(fast_proba)
    if n == 0:
        return CalibrationResult(DEFAULT_THRESHOLD, 0.0, 1.0, 1.0)

    margin = margins(fast_proba)
    agree = (np.argmax(fast_proba, axis=1) == np.argmax(slow_proba, axis=1))
    overall = float(np.mean(agree))

    order = np.argsort(-margin, kind="stable")
    sorted_margin = margin[order]
    cumulative = np.cumsum(agree[order]) / np.arange(1, n + 1)

    # candidate cuts: only at margin-value boundaries (ties stay together)
    boundary = np.ones(n, dtype=bool)
    boundary[:-1] = sorted_margin[:-1] != sorted_margin[1:]
    feasible = np.flatnonzero(boundary & (cumulative >= target_agreement))
    if len(feasible) == 0:
        # nothing confident enough to keep: threshold above every margin
        threshold = float(np.nextafter(sorted_margin[0], np.inf)) if n else 1.0
        return CalibrationResult(threshold, 1.0, 1.0, overall)

    cut = int(feasible[-1])  # longest feasible prefix
    kept = cut + 1
    threshold = float(sorted_margin[cut])
    return CalibrationResult(
        threshold=threshold,
        escalation_rate=float((n - kept) / n),
        kept_agreement=float(cumulative[cut]),
        overall_agreement=overall,
    )


class CascadeRouter:
    """Route selector windows between a fast tier and the teacher."""

    def __init__(
        self,
        slow_selector: Selector,
        threshold: float = DEFAULT_THRESHOLD,
        seed: int = 0,
        cost_model: Optional[CostModel] = None,
        fast_tier: str = "student-int8",
        slow_tier: str = "teacher",
        slow_quality: float = 1.0,
        predict_batch_size: int = DEFAULT_PREDICT_BATCH_SIZE,
        escalation_rate: float = 0.1,
        kept_agreement: float = 0.995,
        fast_quality: float = 0.97,
        window: int = 96,
    ) -> None:
        self.slow_selector = slow_selector
        self.threshold = float(threshold)
        self.seed = int(seed)
        self.cost_model = cost_model or CostModel.default(window)
        self.fast_tier = fast_tier
        #: cost-model tier backing escalations and the "teacher" plan —
        #: "teacher-int8" swaps the quantized twin in as the slow selector
        self.slow_tier = slow_tier
        #: expected teacher-agreement of the slow tier (1.0 for the float
        #: teacher; the quantize_teacher gate's measured agreement for int8)
        self.slow_quality = float(slow_quality)
        self.predict_batch_size = predict_batch_size
        #: calibration-time expectations feeding plan quality/cost estimates
        self.escalation_rate = float(min(max(escalation_rate, 0.0), 1.0))
        self.kept_agreement = float(kept_agreement)
        self.fast_quality = float(fast_quality)

    @classmethod
    def from_calibration(cls, slow_selector: Selector,
                         calibration: CalibrationResult, **kwargs) -> "CascadeRouter":
        return cls(
            slow_selector,
            threshold=calibration.threshold,
            escalation_rate=calibration.escalation_rate,
            kept_agreement=calibration.kept_agreement,
            fast_quality=calibration.overall_agreement,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # escalation
    # ------------------------------------------------------------------ #
    def _tie_break_escalates(self, row: np.ndarray) -> bool:
        """Deterministic seeded coin for a row landing exactly on the
        threshold: blake2b over (seed, row bytes) — content-local, so the
        same window row gets the same verdict in any chunk on any shard."""
        digest = hashlib.blake2b(
            self.seed.to_bytes(8, "little", signed=True)
            + np.ascontiguousarray(row, dtype=np.float64).tobytes(),
            digest_size=1,
        ).digest()
        return digest[0] % 2 == 1

    def escalate_mask(self, fast_proba: np.ndarray,
                      windows: np.ndarray) -> np.ndarray:
        """Boolean mask of rows the teacher must re-classify."""
        margin = margins(fast_proba)
        mask = margin < self.threshold
        for i in np.flatnonzero(margin == self.threshold):
            mask[i] = self._tie_break_escalates(windows[i])
        return mask

    def forward_slow(self, windows: np.ndarray) -> np.ndarray:
        """Teacher forward over escalated rows (chunk-padded predict path;
        never touches the fast tier's window-probability caches)."""
        if isinstance(self.slow_selector, NNSelector):
            return self.slow_selector.predict_proba(
                windows, batch_size=self.predict_batch_size)
        return self.slow_selector.predict_proba(windows)

    def route(self, windows: np.ndarray,
              fast_proba: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Escalate the uncertain rows of one already-classified batch.

        Returns ``(proba, escalated_mask)`` where ``proba`` keeps the fast
        tier's rows for confident windows and carries teacher rows for the
        rest.  ``fast_proba`` is never mutated.
        """
        windows = np.asarray(windows, dtype=np.float64)
        mask = self.escalate_mask(fast_proba, windows)
        if not mask.any():
            return fast_proba, mask
        proba = np.array(fast_proba, dtype=np.float64, copy=True)
        proba[mask] = self.forward_slow(windows[mask])
        return proba, mask

    # ------------------------------------------------------------------ #
    # SLO admission
    # ------------------------------------------------------------------ #
    def plan_cost(self, plan: str, n_windows: int) -> Tuple[float, float]:
        """Predicted ``(ms, mb)`` of running ``n_windows`` under ``plan``."""
        model = self.cost_model
        if plan == "teacher":
            # the plan keeps its name; the tier backing it may be the
            # int8 twin, which is what the cost model prices
            return (model.predict_latency_ms(self.slow_tier, n_windows),
                    model.predict_memory_mb(self.slow_tier, n_windows))
        if plan == "fast":
            return (model.predict_latency_ms(self.fast_tier, n_windows),
                    model.predict_memory_mb(self.fast_tier, n_windows))
        if plan == "cascade":
            escalated = self.escalation_rate * n_windows
            # the teacher forward only runs at all when >= 1 window
            # escalates; under per-window independence that happens with
            # probability 1 - (1 - rate)^n, so its fixed cost (the fitted
            # intercept, which dominates at small escalation counts) is
            # only paid that often, on the conditional escalation count
            p_any = 1.0 - (1.0 - self.escalation_rate) ** max(float(n_windows), 0.0)
            ms = model.predict_latency_ms(self.fast_tier, n_windows)
            mb = model.predict_memory_mb(self.fast_tier, n_windows)
            if p_any > 0.0:
                conditional = escalated / p_any
                ms += p_any * model.predict_latency_ms(self.slow_tier, conditional)
                # the fast forward and the escalation forward run one after
                # the other, so peak memory is the larger of the two (sized
                # by the rows the teacher sees when it does run), not the sum
                mb = max(mb, model.predict_memory_mb(self.slow_tier, conditional))
            return ms, mb
        raise ValueError(f"unknown plan: {plan!r}")

    def plan_quality(self, plan: str) -> float:
        """Expected teacher-agreement of ``plan`` (float teacher ≡ 1.0)."""
        if plan == "teacher":
            return self.slow_quality
        if plan == "cascade":
            return (self.escalation_rate * self.slow_quality
                    + (1.0 - self.escalation_rate) * self.kept_agreement)
        if plan == "fast":
            return self.fast_quality
        raise ValueError(f"unknown plan: {plan!r}")

    def admit(
        self,
        n_windows: int,
        latency_slo_ms: Optional[float] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> AdmitDecision:
        """Pick the best predicted-quality plan that fits the SLO.

        With no SLO the answer is always ``cascade`` (the whole point of
        this subsystem).  Exact quality ties break on lower predicted
        latency, then on the fixed plan order — fully deterministic.
        """
        priced = {p: self.plan_cost(p, n_windows) for p in PLAN_NAMES}
        if latency_slo_ms is None and memory_budget_mb is None:
            ms, mb = priced["cascade"]
            return AdmitDecision("cascade", ms, mb, self.plan_quality("cascade"),
                                 reason="no SLO: cascade by default")

        feasible = [
            p for p in PLAN_NAMES
            if (latency_slo_ms is None or priced[p][0] <= latency_slo_ms)
            and (memory_budget_mb is None or priced[p][1] <= memory_budget_mb)
        ]
        if feasible:
            best = min(feasible, key=lambda p: (-self.plan_quality(p),
                                                priced[p][0],
                                                PLAN_NAMES.index(p)))
            ms, mb = priced[best]
            return AdmitDecision(best, ms, mb, self.plan_quality(best),
                                 reason="best quality within SLO")
        cheapest = min(PLAN_NAMES, key=lambda p: (priced[p][0], priced[p][1],
                                                  PLAN_NAMES.index(p)))
        ms, mb = priced[cheapest]
        return AdmitDecision(cheapest, ms, mb, self.plan_quality(cheapest),
                             fallback=True,
                             reason="no plan fits the SLO; degraded to cheapest")

    def __repr__(self) -> str:
        return (f"CascadeRouter(threshold={self.threshold}, seed={self.seed}, "
                f"fast_tier={self.fast_tier!r}, slow_tier={self.slow_tier!r}, "
                f"escalation_rate={self.escalation_rate:.3f})")
