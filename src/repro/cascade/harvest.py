"""Cost-label measurement and harvesting.

The cost model trains on what the system *actually* measured while doing
real work.  Two halves:

* :func:`observed_cost` wraps one unit of work (a selector forward, a
  detection run) and measures wall-clock milliseconds — and, when
  requested, peak allocated megabytes via ``tracemalloc``.  The serving
  and streaming layers call it at their forward/detect sites and record a
  ``cost_observation`` audit event per measurement.  Measurements are
  report-only: nothing downstream ever branches on them, so the
  bitwise-equality guarantees survive instrumentation.
* :func:`harvest_cost_observations` turns the ``cost_observation`` events
  of any ``--audit`` run back into :class:`CostObservation` training
  labels — the ``train-cost-model`` CLI path.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .cost_model import CostObservation


def observed_cost(
    fn: Callable[[], object],
    track_memory: Optional[bool] = None,
) -> Tuple[object, float, Optional[float]]:
    """Run ``fn()`` and measure it: ``(result, wall_ms, peak_mb)``.

    ``peak_mb`` is ``None`` unless memory is tracked.  The default
    (``track_memory=None``) tracks memory only when ``tracemalloc`` is
    *already* tracing — tracemalloc hooks every allocation and costs far
    too much to switch on behind the operator's back (the obs layer's
    ≤5%-overhead budget), so memory labels are an explicit opt-in: run
    under ``python -X tracemalloc`` (or start tracing programmatically, as
    the cost benchmark does) and every audited observation gains its peak.
    Wall time is two ``perf_counter`` reads — always measured.
    """
    if track_memory is None:
        track_memory = tracemalloc.is_tracing()
    if not track_memory:
        start = time.perf_counter()
        result = fn()
        return result, (time.perf_counter() - start) * 1000.0, None

    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    start = time.perf_counter()
    try:
        result = fn()
        wall_ms = (time.perf_counter() - start) * 1000.0
        peak = tracemalloc.get_traced_memory()[1]
        peak_mb = max(peak - before, 0) / (1024.0 * 1024.0)
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, wall_ms, peak_mb


def cost_observation_event(obs: CostObservation) -> Dict[str, object]:
    """The audit-event payload of one measurement."""
    return obs.as_dict()


def harvest_cost_observations(
    events: Iterable[Dict[str, object]],
) -> List[CostObservation]:
    """Extract cost-model training labels from audit events.

    Accepts any event iterable (``AuditLog.read(path)`` output included)
    and keeps only well-formed ``cost_observation`` entries.
    """
    observations: List[CostObservation] = []
    for event in events:
        if event.get("event") != "cost_observation":
            continue
        try:
            observations.append(CostObservation(
                kind=str(event["kind"]),
                target=str(event["target"]),
                n_windows=int(event["n_windows"]),
                window=int(event["window"]),
                wall_ms=float(event["wall_ms"]),
                peak_mb=(None if event.get("peak_mb") is None
                         else float(event["peak_mb"])),
                length=(None if event.get("length") is None
                        else int(event["length"])),
            ))
        except (KeyError, TypeError, ValueError):
            continue  # malformed/foreign entry — skip, don't fail the harvest
    return observations
