"""Cost-aware cascade selection (the learned-optimizer layer).

``repro.cascade`` routes selector traffic by *predicted cost as well as
quality*, in the spirit of BAO/MSCN-style learned query optimizers:

* :mod:`repro.cascade.cost_model` — a learned per-tier / per-detector
  runtime + peak-memory predictor, trained from audited measurements,
  with a deterministic analytic fallback;
* :mod:`repro.cascade.router` — the confidence-gated cascade (fast tier
  answers confident windows, uncertain ones escalate to the teacher) and
  multi-objective SLO admission over priced plans;
* :mod:`repro.cascade.harvest` — measuring cost observations at the
  forward/detect sites and harvesting training labels from audit logs.
"""

from .cost_model import (
    COST_FEATURE_NAMES,
    CostModel,
    CostObservation,
    cost_features,
    cost_features_cached,
)
from .harvest import harvest_cost_observations, observed_cost
from .router import (
    DEFAULT_THRESHOLD,
    PLAN_NAMES,
    AdmitDecision,
    CalibrationResult,
    CascadeRouter,
    calibrate_margin_threshold,
    margins,
)

__all__ = [
    "COST_FEATURE_NAMES",
    "CostModel",
    "CostObservation",
    "cost_features",
    "cost_features_cached",
    "harvest_cost_observations",
    "observed_cost",
    "DEFAULT_THRESHOLD",
    "PLAN_NAMES",
    "AdmitDecision",
    "CalibrationResult",
    "CascadeRouter",
    "calibrate_margin_threshold",
    "margins",
]
