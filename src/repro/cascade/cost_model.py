"""Learned cost prediction for cascade routing (BAO/MSCN-style).

A learned query optimizer routes plans by *predicted* cost; this module is
the analogous piece for detector selection.  :class:`CostModel` predicts,
for one query (a series, or a batch of selector windows):

* **per-tier forward cost** — wall-clock milliseconds and peak megabytes of
  running ``n_windows`` selector windows through one serving tier
  (``teacher`` / ``student`` / ``student-int8``).  Forward cost is linear
  in the window count (one GEMM-bound pass per chunk), so each tier gets a
  closed-form ridge fit of ``ms ≈ a + b·n_windows`` (and the same for MB),
* **per-detector detection cost** — milliseconds of running one detector
  over a series, a ridge fit over :func:`cost_features` (series length and
  window geometry plus the ~40-statistic catalogue of
  :mod:`repro.selectors.features` computed on the whole series).

Training labels come from measurements the harness already produces:
``cost_observation`` audit events recorded by the serving and streaming
layers (see :mod:`repro.cascade.harvest`) whenever a forward pass or a
detection run executes with auditing on.  An *untrained* model falls back
to fixed analytic coefficients (:meth:`CostModel.default`) so that SLO
admission stays deterministic — predictions never read a clock.

Per-series feature extraction is memoised behind the process-wide
content-addressed transform cache (:mod:`repro.serving.transform_cache`,
the same blake2b hash scheme as ``extract_features_cached``), with
hit/miss counters exposed on the metrics registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ml.linear import RidgeRegression
from ..obs.metrics import default_registry
from ..selectors.features import FEATURE_NAMES, extract_features

#: the serving tiers the per-tier cost heads know about
TIER_NAMES = ("teacher", "teacher-int8", "student", "student-int8")

#: names of the cost-feature vector entries (geometry first, then the
#: per-series statistics catalogue)
COST_FEATURE_NAMES: List[str] = [
    "length", "n_windows", "window", "stride",
] + [f"series_{name}" for name in FEATURE_NAMES]

#: analytic fallback ``(intercept_ms, ms_per_window)`` per tier — rough
#: CPU figures in the measured 8-10x teacher/student ratio; a trained
#: model replaces them, but they keep untrained SLO admission deterministic
DEFAULT_LATENCY_COEF: Dict[str, Tuple[float, float]] = {
    "teacher": (2.0, 0.250),
    "teacher-int8": (1.0, 0.070),
    "student": (0.5, 0.030),
    "student-int8": (0.5, 0.025),
}

#: analytic fallback ``(intercept_mb, mb_per_window)`` per tier — dominated
#: by the float64 window matrix plus per-tier activation working set
DEFAULT_MEMORY_COEF: Dict[str, Tuple[float, float]] = {
    "teacher": (2.0, 0.0120),
    "teacher-int8": (1.0, 0.0050),
    "student": (0.5, 0.0015),
    "student-int8": (0.5, 0.0010),
}


@dataclass(frozen=True)
class CostObservation:
    """One measured (work, cost) pair — a cost-model training label.

    ``kind`` is ``"selector_forward"`` (``target`` = tier name) or
    ``"detection"`` (``target`` = detector name).  ``peak_mb`` is ``None``
    when the measurement could not track memory (e.g. inside a thread
    fan-out, where tracemalloc peaks are not attributable to one task).
    """

    kind: str
    target: str
    n_windows: int
    window: int
    wall_ms: float
    peak_mb: Optional[float] = None
    length: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "target": self.target,
            "n_windows": int(self.n_windows), "window": int(self.window),
            "wall_ms": float(self.wall_ms),
            "peak_mb": None if self.peak_mb is None else float(self.peak_mb),
            "length": None if self.length is None else int(self.length),
        }


# --------------------------------------------------------------------------- #
# per-series cost features (memoised behind the transform cache)
# --------------------------------------------------------------------------- #
def cost_features(series: np.ndarray, window: int, stride: int) -> np.ndarray:
    """The cost-feature vector of one series under one window geometry."""
    series = np.asarray(series, dtype=np.float64).ravel()
    n_windows = max((len(series) - window) // max(stride, 1) + 1, 0) \
        if len(series) >= window else 0
    stats = extract_features(series[None, :])[0] if len(series) else \
        np.zeros(len(FEATURE_NAMES))
    geometry = np.array([len(series), n_windows, window, stride], dtype=np.float64)
    return np.concatenate([geometry, stats])


def cost_features_cached(series: np.ndarray, window: int, stride: int) -> np.ndarray:
    """Memoised :func:`cost_features` behind the content-addressed
    transform cache (same blake2b hash scheme as ``extract_features_cached``).

    The returned vector may be **read-only** on a cache hit.  Hit/miss
    counts surface as ``repro_cascade_cost_feature_cache_{hits,misses}_total``
    when observability is enabled.
    """
    from ..serving.transform_cache import default_transform_cache, transform_fingerprint

    series = np.ascontiguousarray(np.asarray(series, dtype=np.float64).ravel())
    cache = default_transform_cache()
    registry = default_registry()
    hits = registry.counter("repro_cascade_cost_feature_cache_hits_total",
                            "cost-feature extractions answered from the transform cache")
    misses = registry.counter("repro_cascade_cost_feature_cache_misses_total",
                              "cost-feature extractions computed from scratch")
    if cache is None:
        misses.inc()
        return cost_features(series, window, stride)
    key = transform_fingerprint(series, f"cost_features:{window}:{stride}")
    hit = cache.get(key)
    if hit is not None:
        hits.inc()
        return hit  # type: ignore[return-value]
    misses.inc()
    value = cost_features(series, window, stride)
    value.setflags(write=False)
    cache.put(key, value)
    return value


# --------------------------------------------------------------------------- #
# the model
# --------------------------------------------------------------------------- #
def _fit_line(n_windows: np.ndarray, cost: np.ndarray) -> Tuple[float, float]:
    """Ridge fit of ``cost ≈ a + b·n_windows`` with non-negative slope."""
    ridge = RidgeRegression(alpha=1e-6).fit(n_windows[:, None], cost)
    slope = float(max(ridge.coef_[0], 0.0))
    intercept = float(max(ridge.intercept_, 0.0))
    return intercept, slope


class CostModel:
    """Predict per-tier forward cost and per-detector detection cost.

    Prediction is pure arithmetic over stored coefficients — deterministic,
    clock-free, and cheap enough to run on every admission decision.
    """

    def __init__(
        self,
        window: int,
        latency: Optional[Dict[str, Tuple[float, float]]] = None,
        memory: Optional[Dict[str, Tuple[float, float]]] = None,
        detector_latency: Optional[Dict[str, Sequence[float]]] = None,
    ) -> None:
        self.window = int(window)
        self.latency = {t: tuple(map(float, c))
                        for t, c in (latency or DEFAULT_LATENCY_COEF).items()}
        self.memory = {t: tuple(map(float, c))
                       for t, c in (memory or DEFAULT_MEMORY_COEF).items()}
        #: per-detector ridge coefficients over :data:`COST_FEATURE_NAMES`
        #: (``[intercept, *feature_weights]``)
        self.detector_latency = {d: [float(v) for v in coefs]
                                 for d, coefs in (detector_latency or {}).items()}

    # ------------------------------------------------------------------ #
    @classmethod
    def default(cls, window: int) -> "CostModel":
        """The untrained analytic model (fixed coefficients, deterministic)."""
        return cls(window)

    @classmethod
    def fit(cls, observations: Iterable[CostObservation], window: int) -> "CostModel":
        """Fit per-tier and per-detector heads from measured observations.

        Tiers (or detectors) without any observation keep the analytic
        default so predictions stay total over every tier.
        """
        observations = list(observations)
        model = cls.default(window)
        by_tier: Dict[str, List[CostObservation]] = {}
        by_detector: Dict[str, List[CostObservation]] = {}
        for obs in observations:
            if obs.kind == "selector_forward":
                by_tier.setdefault(obs.target, []).append(obs)
            elif obs.kind == "detection":
                by_detector.setdefault(obs.target, []).append(obs)

        for tier, rows in by_tier.items():
            n = np.array([r.n_windows for r in rows], dtype=np.float64)
            ms = np.array([r.wall_ms for r in rows], dtype=np.float64)
            model.latency[tier] = _fit_line(n, ms)
            with_mem = [r for r in rows if r.peak_mb is not None]
            if with_mem:
                n_mem = np.array([r.n_windows for r in with_mem], dtype=np.float64)
                mb = np.array([r.peak_mb for r in with_mem], dtype=np.float64)
                model.memory[tier] = _fit_line(n_mem, mb)

        for detector, rows in by_detector.items():
            # audit labels carry only the series length, so the trained
            # weight vector is sparse over the full cost-feature catalogue:
            # intercept + length weight; richer offline training can fill
            # the statistic weights through the same interface
            length = np.array([r.length or 0 for r in rows], dtype=np.float64)
            ms = np.array([r.wall_ms for r in rows], dtype=np.float64)
            intercept, slope = _fit_line(length, ms)
            coefs = [intercept] + [0.0] * len(COST_FEATURE_NAMES)
            coefs[1 + COST_FEATURE_NAMES.index("length")] = slope
            model.detector_latency[detector] = coefs
        return model

    # ------------------------------------------------------------------ #
    def _coef(self, table: Dict[str, Tuple[float, float]], tier: str) -> Tuple[float, float]:
        if tier in table:
            return table[tier]
        defaults = DEFAULT_LATENCY_COEF if table is self.latency else DEFAULT_MEMORY_COEF
        return defaults.get(tier, defaults["teacher"])

    def predict_latency_ms(self, tier: str, n_windows: float) -> float:
        """Predicted wall-clock ms of one ``n_windows`` forward on ``tier``."""
        a, b = self._coef(self.latency, tier)
        return a + b * max(float(n_windows), 0.0)

    def predict_memory_mb(self, tier: str, n_windows: float) -> float:
        """Predicted peak MB of one ``n_windows`` forward on ``tier``."""
        a, b = self._coef(self.memory, tier)
        return a + b * max(float(n_windows), 0.0)

    def predict_detection_ms(self, detector: str, series: np.ndarray,
                             window: Optional[int] = None,
                             stride: Optional[int] = None) -> Optional[float]:
        """Predicted ms of running ``detector`` over ``series`` (or ``None``
        when the detector head was never trained)."""
        coefs = self.detector_latency.get(detector)
        if coefs is None:
            return None
        window = self.window if window is None else int(window)
        features = cost_features_cached(series, window, stride or window)
        return float(max(coefs[0] + features @ np.asarray(coefs[1:]), 0.0))

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "latency_ms": {t: list(c) for t, c in self.latency.items()},
            "memory_mb": {t: list(c) for t, c in self.memory.items()},
            "detector_latency_ms": {d: list(c)
                                    for d, c in self.detector_latency.items()},
            "feature_names": list(COST_FEATURE_NAMES),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CostModel":
        return cls(
            window=int(data["window"]),
            latency={t: tuple(c) for t, c in dict(data.get("latency_ms") or {}).items()},
            memory={t: tuple(c) for t, c in dict(data.get("memory_mb") or {}).items()},
            detector_latency=dict(data.get("detector_latency_ms") or {}),
        )

    def save(self, path) -> None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "CostModel":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (f"CostModel(window={self.window}, tiers={sorted(self.latency)}, "
                f"detectors={len(self.detector_latency)})")
