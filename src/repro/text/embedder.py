"""Frozen text encoders standing in for the paper's BERT embeddings.

The MKI module requires a *pre-trained, frozen* language model that maps a
metadata description to a fixed-dimensional vector ``z_K``.  Downloading
BERT is impossible in this offline environment, so we provide
:class:`HashingTextEncoder`: a deterministic hashed bag-of-(sub)words
embedding followed by a fixed Gaussian random projection.

Why this preserves the behaviour MKI relies on:

* it is **frozen** — the map never changes during selector learning, just
  like the frozen BERT of the paper;
* it is **smooth** — descriptions sharing dataset names, anomaly counts and
  duration words land close to each other in cosine distance, so the
  InfoNCE objective can align time-series features with metadata clusters;
* it has the same interface (text in, 768-d vector out), so swapping in a
  real LLM embedding only requires implementing :class:`TextEncoder`.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

import numpy as np

from .tokenizer import tokenize_with_subwords


class TextEncoder(ABC):
    """Interface of a frozen sentence encoder."""

    #: dimensionality of the produced embeddings
    dim: int = 768

    @abstractmethod
    def encode(self, texts: Sequence[str]) -> np.ndarray:
        """Return an (n_texts, dim) matrix of embeddings."""

    def encode_one(self, text: str) -> np.ndarray:
        return self.encode([text])[0]


def _stable_token_hash(token: str, buckets: int) -> int:
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % buckets


class HashingTextEncoder(TextEncoder):
    """Deterministic hashed n-gram sentence embedding (BERT substitute).

    Tokens (plus character n-grams) are hashed into ``n_buckets`` TF slots,
    the TF vector is IDF-free but sub-linearly damped (sqrt), then projected
    to ``dim`` dimensions with a fixed Gaussian matrix and L2-normalised.
    The encoder carries no trainable state and is therefore "frozen" by
    construction.
    """

    def __init__(self, dim: int = 768, n_buckets: int = 4096, seed: int = 1234) -> None:
        self.dim = dim
        self.n_buckets = n_buckets
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._projection = rng.normal(0.0, 1.0 / np.sqrt(n_buckets), size=(n_buckets, dim))
        self._cache: Dict[str, np.ndarray] = {}

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        out = np.zeros((len(texts), self.dim))
        for i, text in enumerate(texts):
            out[i] = self._encode_single(text)
        return out

    def _encode_single(self, text: str) -> np.ndarray:
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        counts = np.zeros(self.n_buckets)
        for token in tokenize_with_subwords(text):
            counts[_stable_token_hash(token, self.n_buckets)] += 1.0
        damped = np.sqrt(counts)
        embedding = damped @ self._projection
        norm = np.linalg.norm(embedding)
        if norm > 1e-12:
            embedding = embedding / norm
        self._cache[text] = embedding
        return embedding


class AveragedWordVectorEncoder(TextEncoder):
    """Alternative frozen encoder: averaged fixed random word vectors.

    Provided mainly to demonstrate that MKI is agnostic to the specific
    frozen encoder (mirroring the paper's claim that any pre-trained LLM
    can be plugged in).
    """

    def __init__(self, dim: int = 256, seed: int = 99) -> None:
        self.dim = dim
        self.seed = seed
        self._vectors: Dict[str, np.ndarray] = {}
        self._rng = np.random.default_rng(seed)

    def _vector(self, token: str) -> np.ndarray:
        if token not in self._vectors:
            # Per-token deterministic vector derived from a stable hash.
            token_seed = _stable_token_hash(token, 2 ** 31)
            rng = np.random.default_rng(token_seed)
            self._vectors[token] = rng.normal(0.0, 1.0, size=self.dim)
        return self._vectors[token]

    def encode(self, texts: Sequence[str]) -> np.ndarray:
        out = np.zeros((len(texts), self.dim))
        for i, text in enumerate(texts):
            tokens: List[str] = tokenize_with_subwords(text)
            if tokens:
                vec = np.mean([self._vector(t) for t in tokens], axis=0)
                norm = np.linalg.norm(vec)
                out[i] = vec / norm if norm > 1e-12 else vec
        return out
