"""A small, deterministic word-piece style tokenizer.

The MKI module only needs a stable mapping from metadata strings to token
sequences; this tokenizer lower-cases, splits on non-alphanumeric
characters, keeps numbers as distinct tokens and optionally emits character
n-grams for sub-word robustness.
"""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(r"[a-z]+|\d+")


def tokenize(text: str) -> List[str]:
    """Lower-case word/number tokenization."""
    return _TOKEN_RE.findall(text.lower())


def char_ngrams(token: str, n_min: int = 3, n_max: int = 4) -> List[str]:
    """Character n-grams of a token, with boundary markers (fastText style)."""
    marked = f"<{token}>"
    grams: List[str] = []
    for n in range(n_min, n_max + 1):
        if len(marked) < n:
            continue
        grams.extend(marked[i:i + n] for i in range(len(marked) - n + 1))
    return grams


def tokenize_with_subwords(text: str, n_min: int = 3, n_max: int = 4) -> List[str]:
    """Tokens plus their character n-grams; numbers are kept whole."""
    out: List[str] = []
    for token in tokenize(text):
        out.append(token)
        if not token.isdigit():
            out.extend(char_ngrams(token, n_min, n_max))
    return out
