"""``repro.text`` — frozen text encoders used by the MKI module."""

from .embedder import AveragedWordVectorEncoder, HashingTextEncoder, TextEncoder
from .tokenizer import char_ngrams, tokenize, tokenize_with_subwords

__all__ = [
    "AveragedWordVectorEncoder", "HashingTextEncoder", "TextEncoder",
    "char_ngrams", "tokenize", "tokenize_with_subwords",
]
