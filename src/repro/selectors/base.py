"""Selector interface and registry.

A *selector* is a time-series classifier that maps a fixed-length window to
one of the TSAD models in the candidate set (Definition 2.1 in the paper).
The system supports two kinds:

* **NN-based selectors** (ConvNet, ResNet, InceptionTime, Transformer, MLP,
  LSTM) — an encoder ``E_T`` producing a feature vector ``z_T`` plus a
  linear classifier ``C_T``.  These are the selectors KDSelector improves.
* **non-NN selectors** (feature-based classical classifiers, Rocket,
  1-NN) — trained directly by their own ``fit``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Type

import numpy as np

from ..data.windows import SelectorDataset


class Selector(ABC):
    """Base class of every selector in the zoo."""

    #: registry name, filled by :func:`register_selector`
    name: str = "base"
    #: whether the selector is a neural network (and thus KDSelector-compatible)
    is_neural: bool = False

    @abstractmethod
    def fit(self, dataset: SelectorDataset, **kwargs) -> "Selector":
        """Train the selector on a windowed dataset."""

    @abstractmethod
    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        """Return per-window probabilities over the TSAD model set (N, m)."""

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Return the per-window index of the selected TSAD model."""
        return self.predict_proba(windows).argmax(axis=1)

    def predict_series(self, window_matrix: np.ndarray) -> int:
        """Majority-vote a single series' windows into one model choice."""
        votes = self.predict(window_matrix)
        counts = np.bincount(votes)
        return int(counts.argmax())

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


_SELECTOR_REGISTRY: Dict[str, Type[Selector]] = {}


def register_selector(name: str, neural: bool = False):
    """Class decorator registering a selector under ``name``."""

    def wrap(cls: Type[Selector]) -> Type[Selector]:
        cls.name = name
        cls.is_neural = neural
        _SELECTOR_REGISTRY[name] = cls
        return cls

    return wrap


def selector_names(neural: Optional[bool] = None) -> List[str]:
    """Names of registered selectors, optionally filtered by kind."""
    names = []
    for name, cls in _SELECTOR_REGISTRY.items():
        if neural is None or cls.is_neural == neural:
            names.append(name)
    return names


def make_selector(name: str, **kwargs) -> Selector:
    """Instantiate a registered selector by name."""
    if name not in _SELECTOR_REGISTRY:
        raise KeyError(f"unknown selector {name!r}; available: {sorted(_SELECTOR_REGISTRY)}")
    return _SELECTOR_REGISTRY[name](**kwargs)
