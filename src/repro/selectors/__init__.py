"""``repro.selectors`` — the selector zoo (15 selectors, NN and non-NN).

NN-based selectors (KDSelector-compatible): ConvNet, ResNet, InceptionTime,
Transformer, MLP, LSTMSelector.  Non-NN selectors: feature-based KNN, SVC,
AdaBoost, RandomForest, LogisticRegression, DecisionTree, Ridge, the
kernel-based Rocket, and a raw-window 1-NN.
"""

from .base import Selector, make_selector, register_selector, selector_names
from .encoders import (
    ConvNetEncoder,
    InceptionTimeEncoder,
    LSTMEncoder,
    MLPEncoder,
    ResNetEncoder,
    TransformerEncoder,
)
from .features import FEATURE_NAMES, extract_features
from .nn_selector import (
    ConvNetSelector,
    InceptionTimeSelector,
    LSTMSelector,
    MLPSelector,
    NNSelector,
    ResNetSelector,
    TransformerSelector,
)
from .classical import (
    AdaBoostSelector,
    DecisionTreeSelector,
    FeatureSelector,
    KNNSelector,
    LogisticRegressionSelector,
    NearestNeighborRawSelector,
    RandomForestSelector,
    RidgeSelector,
    SVCSelector,
)
from .ensemble_selector import SelectorEnsemble
from .rocket import RocketFeatureTransform, RocketSelector
from .student import Int8StudentSelector, StaticFeatureEncoder, StudentSelector
from .teacher_int8 import Int8TeacherSelector

__all__ = [
    "Selector", "make_selector", "register_selector", "selector_names",
    "ConvNetEncoder", "InceptionTimeEncoder", "LSTMEncoder", "MLPEncoder",
    "ResNetEncoder", "TransformerEncoder",
    "FEATURE_NAMES", "extract_features",
    "NNSelector", "ConvNetSelector", "ResNetSelector", "InceptionTimeSelector",
    "TransformerSelector", "MLPSelector", "LSTMSelector",
    "FeatureSelector", "KNNSelector", "SVCSelector", "AdaBoostSelector",
    "RandomForestSelector", "LogisticRegressionSelector", "DecisionTreeSelector",
    "RidgeSelector", "NearestNeighborRawSelector",
    "RocketFeatureTransform", "RocketSelector",
    "SelectorEnsemble",
    "StaticFeatureEncoder", "StudentSelector", "Int8StudentSelector",
    "Int8TeacherSelector",
]
