"""Statistical feature extraction for the feature-based selector baselines.

This replaces the TSFresh features used by the paper's non-NN baselines
with a compact catalogue of ~40 interpretable statistics computed per
window: moments, quantiles, autocorrelations, spectral summaries, peak and
crossing counts, energy and complexity measures.
"""

from __future__ import annotations

from typing import List

import numpy as np

FEATURE_NAMES: List[str] = [
    "mean", "std", "min", "max", "median", "iqr", "range",
    "q01", "q05", "q25", "q75", "q95", "q99",
    "skewness", "kurtosis",
    "mean_abs_change", "mean_change", "abs_energy", "root_mean_square",
    "count_above_mean", "count_below_mean", "longest_strike_above_mean",
    "zero_crossings", "mean_crossings",
    "autocorr_lag1", "autocorr_lag2", "autocorr_lag4", "autocorr_lag8",
    "partial_autocorr_lag1",
    "spectral_centroid", "spectral_entropy", "dominant_frequency", "dominant_power_ratio",
    "linear_trend_slope", "linear_trend_r2",
    "n_peaks", "peak_to_peak_mean_distance",
    "complexity_ce", "sample_entropy_proxy", "last_value", "first_value",
]


def _autocorr(x: np.ndarray, lag: int) -> np.ndarray:
    """Batched autocorrelation at ``lag`` for rows of ``x``."""
    n = x.shape[1]
    if lag >= n:
        return np.zeros(x.shape[0])
    mean = x.mean(axis=1, keepdims=True)
    var = x.var(axis=1)
    centred = x - mean
    cov = (centred[:, :-lag] * centred[:, lag:]).mean(axis=1)
    return np.where(var > 1e-12, cov / np.maximum(var, 1e-12), 0.0)


def _longest_strike_above_mean(row: np.ndarray) -> int:
    """Reference (per-row) implementation; the regression baseline of
    :func:`_longest_strike_batch`."""
    above = row > row.mean()
    best = current = 0
    for flag in above:
        current = current + 1 if flag else 0
        best = max(best, current)
    return best


def _count_peaks(row: np.ndarray) -> int:
    """Reference (per-row) implementation of the batched peak count."""
    if len(row) < 3:
        return 0
    interior = row[1:-1]
    return int(np.sum((interior > row[:-2]) & (interior > row[2:])))


def _peak_distance(row: np.ndarray) -> float:
    """Reference (per-row) implementation of the batched peak distance."""
    idx = np.where((row[1:-1] > row[:-2]) & (row[1:-1] > row[2:]))[0]
    if len(idx) < 2:
        return float(len(row))
    return float(np.diff(idx).mean())


def _longest_strike_batch(above: np.ndarray) -> np.ndarray:
    """Longest run of True per row of a boolean matrix, vectorised.

    Run boundaries are found from the sign changes of the zero-padded
    mask; lengths are integers, so the result is bitwise identical to the
    per-row reference loop.
    """
    n, length = above.shape
    padded = np.zeros((n, length + 2), dtype=np.int8)
    padded[:, 1:-1] = above
    edges = np.diff(padded, axis=1)
    run_rows, starts = np.nonzero(edges == 1)
    _, ends = np.nonzero(edges == -1)
    best = np.zeros(n, dtype=np.float64)
    # starts/ends pair up in order within each row
    np.maximum.at(best, run_rows, (ends - starts).astype(np.float64))
    return best


def _peak_stats_batch(x: np.ndarray) -> tuple:
    """Per-row interior peak count and mean peak-to-peak distance.

    The mean of consecutive index differences telescopes to
    ``(last - first) / (count - 1)``, an integer ratio — bitwise identical
    to the reference ``np.diff(idx).mean()``.
    """
    n, length = x.shape
    if length < 3:
        return np.zeros(n), np.full(n, float(length))
    peaks = (x[:, 1:-1] > x[:, :-2]) & (x[:, 1:-1] > x[:, 2:])
    counts = peaks.sum(axis=1)
    first = peaks.argmax(axis=1)
    last = (peaks.shape[1] - 1) - peaks[:, ::-1].argmax(axis=1)
    spread = (last - first).astype(np.float64)
    distance = np.where(counts >= 2,
                        spread / np.maximum(counts - 1, 1),
                        float(length))
    return counts.astype(np.float64), distance


def extract_features(windows: np.ndarray) -> np.ndarray:
    """Compute the feature matrix (n_windows, len(FEATURE_NAMES))."""
    x = np.asarray(windows, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    n, length = x.shape
    eps = 1e-12

    mean = x.mean(axis=1)
    std = x.std(axis=1)
    minimum = x.min(axis=1)
    maximum = x.max(axis=1)
    median = np.median(x, axis=1)
    q01, q05, q25, q75, q95, q99 = np.percentile(x, [1, 5, 25, 75, 95, 99], axis=1)
    iqr = q75 - q25
    value_range = maximum - minimum

    centred = x - mean[:, None]
    safe_std = np.maximum(std, eps)
    skewness = (centred ** 3).mean(axis=1) / safe_std ** 3
    kurtosis = (centred ** 4).mean(axis=1) / safe_std ** 4 - 3.0

    diffs = np.diff(x, axis=1)
    mean_abs_change = np.abs(diffs).mean(axis=1)
    mean_change = diffs.mean(axis=1)
    abs_energy = (x ** 2).sum(axis=1)
    rms = np.sqrt((x ** 2).mean(axis=1))

    above_mean = x > mean[:, None]
    count_above = above_mean.sum(axis=1).astype(float)
    count_below = length - count_above
    longest_strike = _longest_strike_batch(above_mean)

    signs = np.sign(x)
    zero_crossings = (np.abs(np.diff(signs, axis=1)) > 0).sum(axis=1).astype(float)
    mean_crossings = (np.abs(np.diff(above_mean.astype(float), axis=1)) > 0).sum(axis=1).astype(float)

    ac1 = _autocorr(x, 1)
    ac2 = _autocorr(x, 2)
    ac4 = _autocorr(x, 4)
    ac8 = _autocorr(x, 8)
    pac1 = ac1  # first partial autocorrelation equals the first autocorrelation

    spectrum = np.abs(np.fft.rfft(centred, axis=1)) ** 2
    spectrum_sum = np.maximum(spectrum.sum(axis=1), eps)
    freqs = np.arange(spectrum.shape[1], dtype=float)
    spectral_centroid = (spectrum * freqs[None, :]).sum(axis=1) / spectrum_sum
    p_norm = spectrum / spectrum_sum[:, None]
    spectral_entropy = -(p_norm * np.log(p_norm + eps)).sum(axis=1)
    dominant_freq = spectrum[:, 1:].argmax(axis=1).astype(float) + 1.0 if spectrum.shape[1] > 1 \
        else np.zeros(n)
    dominant_power_ratio = (
        spectrum[np.arange(n), dominant_freq.astype(int)] / spectrum_sum
        if spectrum.shape[1] > 1 else np.zeros(n)
    )

    t = np.arange(length, dtype=float)
    t_centred = t - t.mean()
    slope = (centred * t_centred[None, :]).sum(axis=1) / np.maximum((t_centred ** 2).sum(), eps)
    fitted = slope[:, None] * t_centred[None, :]
    ss_res = ((centred - fitted) ** 2).sum(axis=1)
    ss_tot = np.maximum((centred ** 2).sum(axis=1), eps)
    r2 = 1.0 - ss_res / ss_tot

    n_peaks, peak_dist = _peak_stats_batch(x)

    complexity = np.sqrt((diffs ** 2).sum(axis=1))
    sample_entropy_proxy = np.log1p(mean_abs_change / np.maximum(std, eps))

    features = np.column_stack([
        mean, std, minimum, maximum, median, iqr, value_range,
        q01, q05, q25, q75, q95, q99,
        skewness, kurtosis,
        mean_abs_change, mean_change, abs_energy, rms,
        count_above, count_below, longest_strike,
        zero_crossings, mean_crossings,
        ac1, ac2, ac4, ac8,
        pac1,
        spectral_centroid, spectral_entropy, dominant_freq, dominant_power_ratio,
        slope, r2,
        n_peaks, peak_dist,
        complexity, sample_entropy_proxy, x[:, -1], x[:, 0],
    ])
    if features.shape[1] != len(FEATURE_NAMES):
        raise AssertionError(
            f"feature matrix has {features.shape[1]} columns but {len(FEATURE_NAMES)} names"
        )
    return np.nan_to_num(features, nan=0.0, posinf=0.0, neginf=0.0)


def extract_features_cached(windows: np.ndarray) -> np.ndarray:
    """Memoised :func:`extract_features` behind the content-addressed
    transform cache (:mod:`repro.serving.transform_cache`).

    The key is the blake2b fingerprint of the windows matrix — the same
    content hash the selection cache uses — so repeated series (and the
    repeated chunk matrices of the padded predict path) pay feature
    extraction once per content.  The returned matrix may be **read-only**
    on a cache hit; callers that post-process (scalers, normalisation)
    already allocate new arrays.
    """
    from ..serving.transform_cache import cached_transform  # deferred: serving imports selectors

    x = np.asarray(windows, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    return cached_transform(x, "stats_features", extract_features)
