"""Time-series encoders ``E_T`` used by the NN-based selectors.

Each encoder maps a batch of windows (N, L) to a feature matrix (N, D) and
exposes its output dimensionality as ``feature_dim`` so that the linear
classifier ``C_T`` and the MKI projection ``h_T`` can be sized correctly.
The architectures follow the baselines of Sylligardos et al. (2023) that
the paper evaluates: ConvNet, ResNet, InceptionTime and a Transformer with
a convolutional stem (SiT-stem).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn


class _ConvBlock(nn.Module):
    """Conv1d + BatchNorm + ReLU."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int) -> None:
        super().__init__()
        self.conv = nn.Conv1d(in_channels, out_channels, kernel_size, padding=kernel_size // 2)
        self.bn = nn.BatchNorm1d(out_channels)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.bn(self.conv(x)).relu()


class ConvNetEncoder(nn.Module):
    """Plain three-block convolutional encoder with global average pooling."""

    def __init__(self, in_channels: int = 1, mid_channels: int = 32, num_layers: int = 3) -> None:
        super().__init__()
        blocks = []
        channels = in_channels
        for i in range(num_layers):
            out_channels = mid_channels * (2 ** min(i, 1))
            blocks.append(_ConvBlock(channels, out_channels, kernel_size=7 if i == 0 else 5))
            channels = out_channels
        self.blocks = nn.Sequential(*blocks)
        self.feature_dim = channels

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = self.blocks(x)
        return h.mean(axis=2)


class _ResidualBlock(nn.Module):
    """Three convolutions with a (projected) shortcut, as in TSC ResNet."""

    def __init__(self, in_channels: int, out_channels: int) -> None:
        super().__init__()
        self.conv1 = _ConvBlock(in_channels, out_channels, kernel_size=7)
        self.conv2 = _ConvBlock(out_channels, out_channels, kernel_size=5)
        self.conv3 = nn.Conv1d(out_channels, out_channels, kernel_size=3, padding=1)
        self.bn3 = nn.BatchNorm1d(out_channels)
        self.shortcut = (
            nn.Conv1d(in_channels, out_channels, kernel_size=1)
            if in_channels != out_channels else None
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = self.conv1(x)
        h = self.conv2(h)
        h = self.bn3(self.conv3(h))
        residual = self.shortcut(x) if self.shortcut is not None else x
        return (h + residual).relu()


class ResNetEncoder(nn.Module):
    """ResNet encoder: stacked residual blocks + global average pooling.

    This is the paper's default selector architecture.
    """

    def __init__(self, in_channels: int = 1, mid_channels: int = 32, num_layers: int = 3) -> None:
        super().__init__()
        blocks = []
        channels = in_channels
        for i in range(num_layers):
            out_channels = mid_channels if i == 0 else mid_channels * 2
            blocks.append(_ResidualBlock(channels, out_channels))
            channels = out_channels
        self.blocks = nn.Sequential(*blocks)
        self.feature_dim = channels

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.blocks(x).mean(axis=2)


class _InceptionModule(nn.Module):
    """Parallel convolutions with different kernel sizes plus a bottleneck."""

    def __init__(self, in_channels: int, out_channels: int, kernel_sizes=(9, 5, 3)) -> None:
        super().__init__()
        branch_channels = max(out_channels // (len(kernel_sizes) + 1), 4)
        self.bottleneck = nn.Conv1d(in_channels, branch_channels, kernel_size=1) if in_channels > 1 else None
        source_channels = branch_channels if self.bottleneck is not None else in_channels
        self.branches = nn.ModuleList([
            nn.Conv1d(source_channels, branch_channels, k, padding=k // 2) for k in kernel_sizes
        ])
        self.pool_conv = nn.Conv1d(in_channels, branch_channels, kernel_size=1)
        self.bn = nn.BatchNorm1d(branch_channels * (len(kernel_sizes) + 1))
        self.out_channels = branch_channels * (len(kernel_sizes) + 1)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        source = self.bottleneck(x) if self.bottleneck is not None else x
        outputs = [branch(source) for branch in self.branches]
        outputs.append(self.pool_conv(x))
        merged = nn.concatenate(outputs, axis=1)
        return self.bn(merged).relu()


class InceptionTimeEncoder(nn.Module):
    """InceptionTime-style encoder: stacked inception modules with a residual link."""

    def __init__(self, in_channels: int = 1, mid_channels: int = 32, num_layers: int = 3) -> None:
        super().__init__()
        modules = []
        channels = in_channels
        for _ in range(num_layers):
            module = _InceptionModule(channels, mid_channels * 2)
            modules.append(module)
            channels = module.out_channels
        self.modules_list = nn.ModuleList(modules)
        self.residual_proj = nn.Conv1d(in_channels, channels, kernel_size=1)
        self.feature_dim = channels

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        h = x
        for module in self.modules_list:
            h = module(h)
        h = (h + self.residual_proj(x)).relu()
        return h.mean(axis=2)


class TransformerEncoder(nn.Module):
    """Transformer selector encoder with a convolutional stem (SiT-stem).

    The stem downsamples the window into a short token sequence; standard
    pre-norm transformer blocks then model token interactions, and the
    feature is the mean over tokens.
    """

    def __init__(
        self,
        in_channels: int = 1,
        embed_dim: int = 48,
        num_layers: int = 2,
        num_heads: int = 4,
        patch_stride: int = 8,
        dropout: float = 0.1,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__()
        self.stem = nn.Conv1d(in_channels, embed_dim, kernel_size=patch_stride, stride=patch_stride)
        self.positional = nn.PositionalEncoding(embed_dim)
        self.blocks = nn.Sequential(*[
            nn.TransformerEncoderLayer(embed_dim, num_heads, dropout=dropout,
                                       seed=None if seed is None else seed + i)
            for i in range(num_layers)
        ])
        self.norm = nn.LayerNorm(embed_dim)
        self.feature_dim = embed_dim

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        tokens = self.stem(x)                 # (N, D, T')
        tokens = tokens.swapaxes(1, 2)        # (N, T', D)
        tokens = self.positional(tokens)
        tokens = self.blocks(tokens)
        tokens = self.norm(tokens)
        return tokens.mean(axis=1)


class MLPEncoder(nn.Module):
    """Simple MLP encoder over the flattened window."""

    def __init__(self, window: int, hidden: int = 128, feature_dim: int = 64) -> None:
        super().__init__()
        self.fc1 = nn.Linear(window, hidden)
        self.fc2 = nn.Linear(hidden, feature_dim)
        self.feature_dim = feature_dim

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        flat = x.reshape(x.shape[0], x.shape[1] * x.shape[2])
        return self.fc2(self.fc1(flat).relu()).relu()


class LSTMEncoder(nn.Module):
    """LSTM encoder over a downsampled window (last hidden state)."""

    def __init__(self, hidden: int = 48, downsample: int = 4) -> None:
        super().__init__()
        self.downsample = downsample
        self.lstm = nn.LSTM(1, hidden)
        self.feature_dim = hidden

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        # x: (N, 1, L) -> downsample the sequence to keep the loop short.
        data = x.numpy()[:, 0, :]
        data = data[:, :: self.downsample]
        seq = nn.Tensor(data[:, :, None], requires_grad=False)
        states = self.lstm(seq)
        return states[:, -1, :]
