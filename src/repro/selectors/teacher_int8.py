"""Int8 twin of a float teacher selector — the quantized escalation tier.

:class:`Int8TeacherSelector` rebuilds the exact module structure of a base
neural selector (``arch_kwargs["base_type"]``, e.g. ``"ResNet"``) and swaps
every :class:`repro.nn.Conv1d` in the encoder for a
:class:`repro.nn.QuantizedConv1d` plus the classifier for a
:class:`repro.nn.QuantizedLinear`.  Everything else (batch norm, ReLU,
residual adds, pooling) stays float64, so the quantized twin shares the
teacher's topology and its state dict differs only in the conv/classifier
leaves — which is what lets the selector store round-trip it from
``(base_type, window, n_classes, seed, arch_kwargs)`` alone.

Instances are produced by :func:`repro.distill.quantize_teacher` (which
calibrates per-conv activation scales and enforces the dequantize-compare
agreement gate) or restored from the selector store; ``fit`` raises.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..accel.precision import use_precision
from ..nn.quant import QuantizedConv1d, QuantizedLinear
from .base import make_selector, register_selector
from .nn_selector import NNSelector

#: default architecture quantized when ``base_type`` is not recorded
DEFAULT_BASE_TYPE = "ResNet"

#: inference chunk for the int8 teacher — its outputs are exact scaled
#: integers, hence bitwise chunk-independent, so a larger chunk than the
#: float default simply amortises the per-call quantize/gather overhead
INT8_TEACHER_PREDICT_BATCH_SIZE = 512


class FoldedBatchNorm(nn.Module):
    """Placeholder for a batch norm folded into the preceding int8 conv.

    In eval mode ``BatchNorm1d`` is a per-channel affine, which the
    quantizer absorbs into the conv's per-channel weight scales and bias
    (``g = gamma / sqrt(var + eps)``; ``W' = W * g``,
    ``b' = (b - mean) * g + beta``) — so the quantized twin replaces the
    norm with this identity and skips the elementwise pass entirely.
    """

    def forward(self, x):
        return x


def paired_bn_name(parent: nn.Module, conv_name: str, conv) -> Optional[str]:
    """Name of the batch norm that directly follows ``conv`` in ``parent``.

    Encoders here follow the ``convX``/``bnX`` naming convention
    (``_ConvBlock.conv``/``.bn``, ``_ResidualBlock.conv3``/``.bn3``); a
    norm is foldable only when it is a :class:`~repro.nn.BatchNorm1d` over
    exactly the conv's output channels.  Norms applied to merged outputs
    (e.g. InceptionTime's post-concat norm) never pair and stay float.
    """
    if not conv_name.startswith("conv"):
        return None
    bn_name = "bn" + conv_name[len("conv"):]
    bn = parent._modules.get(bn_name)
    if isinstance(bn, nn.BatchNorm1d) and bn.num_features == conv.out_channels:
        return bn_name
    return None


def swap_conv_modules(module: nn.Module) -> int:
    """Replace every ``Conv1d`` child of ``module`` (recursively) in place.

    Each float conv becomes an empty :class:`QuantizedConv1d` of the same
    geometry (weights are filled later by ``load_weights`` or
    ``load_state``), and its paired batch norm — when the
    :func:`paired_bn_name` convention identifies one — becomes a
    :class:`FoldedBatchNorm` identity.  Returns the number of convs
    swapped.  Replacement goes through ``setattr`` on the owning parent so
    both the module registry and the plain attribute stay consistent.
    """
    count = 0
    for name, child in list(module._modules.items()):
        if isinstance(child, nn.Conv1d):
            bn_name = paired_bn_name(module, name, child)
            setattr(module, name, QuantizedConv1d(
                child.in_channels, child.out_channels, child.kernel_size,
                stride=child.stride, padding=child.padding, dilation=child.dilation))
            if bn_name is not None:
                setattr(module, bn_name, FoldedBatchNorm())
            count += 1
        elif not isinstance(child, (QuantizedConv1d, FoldedBatchNorm)):
            count += swap_conv_modules(child)
    return count


def named_conv_modules(module: nn.Module, conv_types=(nn.Conv1d,),
                       prefix: str = "") -> List[Tuple[str, nn.Module]]:
    """``(qualified_name, conv)`` pairs in deterministic traversal order.

    Shares its traversal with :func:`conv_fold_plan` and
    :func:`swap_conv_modules`, so float convs and their quantized twins
    resolve to identical qualified names.
    """
    out: List[Tuple[str, nn.Module]] = []
    for name, child in module._modules.items():
        qualified = prefix + name
        if isinstance(child, tuple(conv_types)):
            out.append((qualified, child))
        else:
            out.extend(named_conv_modules(child, conv_types, prefix=qualified + "."))
    return out


def conv_fold_plan(module: nn.Module, prefix: str = "") -> List[Tuple[str, nn.Module, Optional[nn.Module]]]:
    """``(qualified_name, conv, folded_bn_or_None)`` for every float conv.

    The traversal order and the pairing rule match
    :func:`swap_conv_modules` exactly, so a plan computed on the float
    teacher lines up one-to-one with the quantized twin's conv modules.
    """
    plan: List[Tuple[str, nn.Module, Optional[nn.Module]]] = []
    for name, child in module._modules.items():
        qualified = prefix + name
        if isinstance(child, nn.Conv1d):
            bn_name = paired_bn_name(module, name, child)
            plan.append((qualified, child,
                         module._modules[bn_name] if bn_name is not None else None))
        else:
            plan.extend(conv_fold_plan(child, prefix=qualified + "."))
    return plan


@register_selector("TeacherInt8", neural=True)
class Int8TeacherSelector(NNSelector):
    """Quantized teacher: int8 conv encoder + int8 linear classifier.

    ``arch_kwargs`` must carry ``base_type`` (the registered name of the
    float selector this is a twin of); the remaining keys are forwarded to
    the base selector's constructor, so the twin's encoder is structurally
    identical to the teacher it was quantized from.
    """

    def build(self, window: Optional[int] = None, n_classes: Optional[int] = None) -> "Int8TeacherSelector":
        if window is not None:
            self.window = window
        if n_classes is not None:
            self.n_classes = n_classes
        if self.encoder is None:
            base_kwargs = dict(self.arch_kwargs)
            base_type = base_kwargs.pop("base_type", DEFAULT_BASE_TYPE)
            base = make_selector(base_type, window=self.window, n_classes=self.n_classes,
                                 seed=self.seed, **base_kwargs)
            if not isinstance(base, NNSelector):
                raise ValueError(f"base selector {base_type!r} is not a neural selector")
            base.build()
            swapped = swap_conv_modules(base.encoder)
            if swapped == 0:
                raise ValueError(
                    f"{base_type!r} encoder has no Conv1d layers to quantize; "
                    "use repro.distill.quantize_student for feature-based selectors")
            self.encoder = base.encoder
            self.classifier = QuantizedLinear(base.encoder.feature_dim, self.n_classes)
        return self

    def fit(self, dataset, config=None, **overrides):
        raise RuntimeError(
            "Int8TeacherSelector is inference-only; train a float teacher "
            "and quantize it with repro.distill.quantize_teacher"
        )

    def forward(self, windows):
        """Run the quantized graph with float32 intermediate activations.

        Every value between int8 convs is a dequantized scaled integer; the
        float64 default precision would double the memory traffic of the
        relu / residual-add / pooling passes for no accuracy the agreement
        gate could measure.  The float32 elementwise ops are deterministic
        per element, so chunk independence is unaffected.
        """
        with use_precision("float32"):
            return super().forward(windows)

    def encode(self, windows):
        with use_precision("float32"):
            return super().encode(windows)

    def predict_proba(self, windows, batch_size=None):
        """Chunked inference WITHOUT padding partial chunks.

        ``batched_predict_proba`` pads every chunk to a fixed width because
        float GEMM bits depend on the matrix shape.  The int8 forward
        accumulates exact integers, so each window's bits are already
        independent of chunk width — padding would only burn time, and
        small serving batches can run at their natural size.
        """
        self.build()
        self.train_mode(False)
        windows = np.asarray(windows)
        size = batch_size or INT8_TEACHER_PREDICT_BATCH_SIZE
        proba = np.empty((len(windows), self.n_classes), dtype=np.float64)
        for start in range(0, len(windows), size):
            chunk = windows[start:start + size]
            with nn.no_grad():
                logits, _ = self.forward(chunk)
                proba[start:start + len(chunk)] = nn.functional.softmax(
                    logits, axis=-1).numpy()
        return proba
