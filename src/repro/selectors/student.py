"""Distilled student selectors — the serving fast path.

A :class:`StudentSelector` is a thin model over *static* window encodings:
the ~40-statistic feature catalogue of :mod:`repro.selectors.features`
and/or ROCKET (PPV, max) kernel features, followed by two small linear
layers.  It is trained from a teacher NN selector's soft labels by
:func:`repro.distill.distill_student` (reusing the PISL machinery), and
its feature extraction runs through the content-addressed transform cache
so repeated series skip it entirely.

:class:`Int8StudentSelector` is the quantized twin: both linear layers are
:class:`repro.nn.QuantizedLinear` (int8 symmetric per-channel weights,
calibrated per-tensor activation scales).  It is inference-only — built by
:func:`repro.distill.quantize_student` behind an explicit
dequantize-compare accuracy gate — and round-trips through the selector
store with its int8 payload intact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.quant import QuantizedLinear
from .base import register_selector
from .features import FEATURE_NAMES, extract_features
from .nn_selector import NNSelector
from .rocket import RocketFeatureTransform

#: feature-set names accepted by the student encoder
STUDENT_FEATURE_SETS = ("stats", "rocket", "both")


def student_feature_dim(features: str, n_kernels: int) -> int:
    """Input dimensionality of the student for one feature-set choice."""
    if features == "stats":
        return len(FEATURE_NAMES)
    if features == "rocket":
        return 2 * n_kernels
    if features == "both":
        return len(FEATURE_NAMES) + 2 * n_kernels
    raise ValueError(f"unknown feature set {features!r}; expected one of {STUDENT_FEATURE_SETS}")


class StaticFeatureEncoder(nn.Module):
    """Static window encodings + one (optionally int8) hidden layer.

    The trainable part is a single ``input_dim -> hidden`` linear + ReLU;
    everything upstream (statistics, ROCKET kernels, normalisation) is
    deterministic and gradient-free, which is what makes the student cheap
    enough for the serving fast path.  Normalisation statistics live in
    ``feat_mean`` / ``feat_scale`` buffers (set by :meth:`calibrate`) so
    they serialize with the model.  ROCKET kernels are *not* serialized:
    they are re-fit deterministically from ``(seed, n_kernels, window)``.
    """

    def __init__(self, window: int, hidden: int = 64, features: str = "stats",
                 n_kernels: int = 96, seed: int = 0, quantized: bool = False) -> None:
        super().__init__()
        if features not in STUDENT_FEATURE_SETS:
            raise ValueError(f"unknown feature set {features!r}; expected one of {STUDENT_FEATURE_SETS}")
        self.window = int(window)
        self.features = features
        self.n_kernels = int(n_kernels)
        self.seed = int(seed)
        self.quantized = bool(quantized)
        self.input_dim = student_feature_dim(features, self.n_kernels)
        self.feature_dim = int(hidden)
        self.register_buffer("feat_mean", np.zeros(self.input_dim, dtype=np.float64))
        self.register_buffer("feat_scale", np.ones(self.input_dim, dtype=np.float64))
        if quantized:
            self.fc1 = QuantizedLinear(self.input_dim, self.feature_dim)
        else:
            self.fc1 = nn.Linear(self.input_dim, self.feature_dim)
        self.act = nn.ReLU()

    # ------------------------------------------------------------------ #
    # static transforms
    # ------------------------------------------------------------------ #
    def _rocket(self) -> RocketFeatureTransform:
        rocket = self.__dict__.get("_rocket_transform")
        if rocket is None:
            rocket = RocketFeatureTransform(n_kernels=self.n_kernels, seed=self.seed).fit(self.window)
            self.__dict__["_rocket_transform"] = rocket
        return rocket

    def transform(self, windows: np.ndarray) -> np.ndarray:
        """Raw static features of a 2-D windows matrix (cached at inference).

        During training every minibatch is a distinct submatrix, so the
        content-addressed cache would only churn; it is bypassed whenever
        the module is in train mode.
        """
        x = np.asarray(windows, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected a (n, window) matrix, got shape {x.shape}")
        use_cache = not self.training
        parts = []
        if self.features in ("stats", "both"):
            parts.append(self._cached(x, "stats_features", extract_features) if use_cache
                         else extract_features(x))
        if self.features in ("rocket", "both"):
            rocket = self._rocket()
            rocket_id = f"rocket:{self.seed}:{self.n_kernels}:{self.window}"
            parts.append(self._cached(x, rocket_id, rocket.transform) if use_cache
                         else rocket.transform(x))
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)

    @staticmethod
    def _cached(x: np.ndarray, transform_id: str, fn) -> np.ndarray:
        from ..serving.transform_cache import cached_transform  # deferred: serving imports selectors

        return cached_transform(x, transform_id, fn)

    def calibrate(self, windows: np.ndarray) -> "StaticFeatureEncoder":
        """Fit the normalisation buffers on (training/calibration) windows."""
        feats = self.transform(np.asarray(windows, dtype=np.float64))
        mean = feats.mean(axis=0)
        scale = np.maximum(feats.std(axis=0), 1e-8)
        self.update_buffer("feat_mean", mean.astype(np.float64))
        self.update_buffer("feat_scale", scale.astype(np.float64))
        return self

    def normalized_features(self, windows: np.ndarray) -> np.ndarray:
        """Normalised feature matrix — the exact input of ``fc1``.

        Allocates a fresh array, so read-only cached transform outputs are
        never mutated.
        """
        return (self.transform(windows) - self.feat_mean) / self.feat_scale

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, x) -> nn.Tensor:
        data = x.data if isinstance(x, nn.Tensor) else np.asarray(x, dtype=np.float64)
        if data.ndim == 3:  # (N, 1, L) from NNSelector._to_input
            data = data[:, 0, :]
        feats = self.normalized_features(data)
        return self.act(self.fc1(nn.Tensor(feats)))

    def hidden_activations(self, windows: np.ndarray) -> np.ndarray:
        """Post-ReLU hidden layer on a 2-D windows matrix (no gradients).

        Used for activation-scale calibration of the classifier input.
        """
        with nn.no_grad():
            return self.forward(np.asarray(windows, dtype=np.float64)).numpy()


@register_selector("Student", neural=True)
class StudentSelector(NNSelector):
    """Distilled fast-path selector: static features -> two thin layers."""

    def __init__(self, window: int = 128, n_classes: int = 12, epochs: int = 25,
                 batch_size: int = 64, lr: float = 1e-2, seed: int = 0,
                 hidden: int = 64, features: str = "stats", n_kernels: int = 96) -> None:
        super().__init__(window=window, n_classes=n_classes, epochs=epochs,
                         batch_size=batch_size, lr=lr, seed=seed,
                         hidden=hidden, features=features, n_kernels=n_kernels)

    def _make_encoder(self) -> nn.Module:
        return StaticFeatureEncoder(
            window=self.window,
            hidden=self.arch_kwargs.get("hidden", 64),
            features=self.arch_kwargs.get("features", "stats"),
            n_kernels=self.arch_kwargs.get("n_kernels", 96),
            seed=self.seed,
            quantized=False,
        )


@register_selector("StudentInt8", neural=True)
class Int8StudentSelector(StudentSelector):
    """Quantized student: int8 hidden layer + int8 classifier.

    Inference-only — ``fit`` raises.  Instances are produced by
    :func:`repro.distill.quantize_student` (which calibrates activation
    scales and enforces the dequantize-compare agreement gate) or restored
    from the selector store, whose ``.npz`` checkpoints keep the int8
    buffers intact.
    """

    def build(self, window: Optional[int] = None, n_classes: Optional[int] = None) -> "Int8StudentSelector":
        if window is not None:
            self.window = window
        if n_classes is not None:
            self.n_classes = n_classes
        if self.encoder is None:
            nn.init.set_seed(self.seed)
            encoder = StaticFeatureEncoder(
                window=self.window,
                hidden=self.arch_kwargs.get("hidden", 64),
                features=self.arch_kwargs.get("features", "stats"),
                n_kernels=self.arch_kwargs.get("n_kernels", 96),
                seed=self.seed,
                quantized=True,
            )
            self.encoder = encoder
            self.classifier = QuantizedLinear(encoder.feature_dim, self.n_classes)
        return self

    def fit(self, dataset, config=None, **overrides):
        raise RuntimeError(
            "Int8StudentSelector is inference-only; train a float StudentSelector "
            "and quantize it with repro.distill.quantize_student"
        )
