"""Non-NN selector baselines: classical classifiers on extracted features.

These correspond to the "feature-based methods" of the paper's Fig. 4
(TSFresh features + KNN / SVC / AdaBoost / RandomForest) plus a few extra
classical selectors that round out the 15-selector zoo of the demo system.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.windows import SelectorDataset
from ..ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    RidgeClassifier,
    StandardScaler,
)
from .base import Selector, register_selector
from .features import extract_features, extract_features_cached


class FeatureSelector(Selector):
    """Template: extract statistical features, scale them, fit a classifier."""

    def __init__(self, n_classes: int = 12, seed: int = 0, **clf_kwargs) -> None:
        self.n_classes = n_classes
        self.seed = seed
        self.clf_kwargs = clf_kwargs
        self.scaler = StandardScaler()
        self.classifier = None
        self.classes_seen_: Optional[np.ndarray] = None

    def _make_classifier(self):
        raise NotImplementedError

    def fit(self, dataset: SelectorDataset, **kwargs) -> "FeatureSelector":
        del kwargs
        self.n_classes = dataset.n_classes
        features = self.scaler.fit_transform(extract_features(dataset.windows))
        self.classifier = self._make_classifier()
        self.classifier.fit(features, dataset.hard_labels)
        self.classes_seen_ = np.asarray(self.classifier.classes_, dtype=int)
        return self

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        if self.classifier is None:
            raise RuntimeError("selector must be fitted before predict")
        # memoised behind the content-addressed transform cache: repeated
        # series skip feature extraction entirely (the scaler allocates a
        # fresh output, so the read-only cached matrix is never mutated)
        features = self.scaler.transform(extract_features_cached(windows))
        partial = self.classifier.predict_proba(features)
        proba = np.zeros((len(windows), self.n_classes))
        proba[:, self.classes_seen_] = partial
        return proba


@register_selector("KNN")
class KNNSelector(FeatureSelector):
    """TSFresh-style features + K nearest neighbours."""

    def _make_classifier(self):
        return KNeighborsClassifier(n_neighbors=self.clf_kwargs.get("n_neighbors", 5), weights="distance")


@register_selector("SVC")
class SVCSelector(FeatureSelector):
    """TSFresh-style features + linear support vector classifier."""

    def _make_classifier(self):
        return LinearSVC(c=self.clf_kwargs.get("c", 1.0), n_iter=self.clf_kwargs.get("n_iter", 20), seed=self.seed)


@register_selector("AdaBoost")
class AdaBoostSelector(FeatureSelector):
    """TSFresh-style features + AdaBoost over decision stumps."""

    def _make_classifier(self):
        return AdaBoostClassifier(n_estimators=self.clf_kwargs.get("n_estimators", 40), seed=self.seed)


@register_selector("RandomForest")
class RandomForestSelector(FeatureSelector):
    """TSFresh-style features + random forest."""

    def _make_classifier(self):
        return RandomForestClassifier(
            n_estimators=self.clf_kwargs.get("n_estimators", 30),
            max_depth=self.clf_kwargs.get("max_depth", 8),
            seed=self.seed,
        )


@register_selector("LogisticRegression")
class LogisticRegressionSelector(FeatureSelector):
    """TSFresh-style features + multinomial logistic regression."""

    def _make_classifier(self):
        return LogisticRegression(
            lr=self.clf_kwargs.get("lr", 0.1),
            n_iter=self.clf_kwargs.get("n_iter", 200),
        )


@register_selector("DecisionTree")
class DecisionTreeSelector(FeatureSelector):
    """TSFresh-style features + a single CART tree."""

    def _make_classifier(self):
        return DecisionTreeClassifier(max_depth=self.clf_kwargs.get("max_depth", 10), seed=self.seed)


@register_selector("Ridge")
class RidgeSelector(FeatureSelector):
    """TSFresh-style features + ridge classifier."""

    def _make_classifier(self):
        return RidgeClassifier(alpha=self.clf_kwargs.get("alpha", 1.0))


@register_selector("NN1Euclidean")
class NearestNeighborRawSelector(Selector):
    """1-NN on the raw (z-normalised) windows with Euclidean distance."""

    def __init__(self, n_classes: int = 12, n_neighbors: int = 1, max_references: int = 2000, seed: int = 0) -> None:
        self.n_classes = n_classes
        self.n_neighbors = n_neighbors
        self.max_references = max_references
        self.seed = seed
        self.classifier: Optional[KNeighborsClassifier] = None
        self.classes_seen_: Optional[np.ndarray] = None

    def fit(self, dataset: SelectorDataset, **kwargs) -> "NearestNeighborRawSelector":
        del kwargs
        self.n_classes = dataset.n_classes
        windows = dataset.windows
        labels = dataset.hard_labels
        if len(windows) > self.max_references:
            rng = np.random.default_rng(self.seed)
            keep = rng.choice(len(windows), size=self.max_references, replace=False)
            windows, labels = windows[keep], labels[keep]
        self.classifier = KNeighborsClassifier(n_neighbors=self.n_neighbors).fit(windows, labels)
        self.classes_seen_ = np.asarray(self.classifier.classes_, dtype=int)
        return self

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        if self.classifier is None:
            raise RuntimeError("selector must be fitted before predict")
        partial = self.classifier.predict_proba(np.asarray(windows, dtype=np.float64))
        proba = np.zeros((len(windows), self.n_classes))
        proba[:, self.classes_seen_] = partial
        return proba
