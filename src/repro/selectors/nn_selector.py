"""NN-based selectors: an encoder ``E_T`` plus a linear classifier ``C_T``.

These are the selectors that KDSelector improves.  Their ``fit`` delegates
to :class:`repro.core.trainer.SelectorTrainer`, so the same class covers the
"standard" learning framework (hard-label cross entropy, Fig. 2 top) and the
knowledge-enhanced / pruned variants (PISL, MKI, PA) simply by passing a
different trainer configuration.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..data.windows import SelectorDataset
from .base import Selector, register_selector
from .encoders import (
    ConvNetEncoder,
    InceptionTimeEncoder,
    LSTMEncoder,
    MLPEncoder,
    ResNetEncoder,
    TransformerEncoder,
)


class NNSelector(Selector):
    """Base class of every neural selector (encoder + linear classifier)."""

    is_neural = True

    def __init__(
        self,
        window: int = 128,
        n_classes: int = 12,
        epochs: int = 10,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: int = 0,
        **arch_kwargs,
    ) -> None:
        self.window = window
        self.n_classes = n_classes
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.arch_kwargs = dict(arch_kwargs)
        self.encoder: Optional[nn.Module] = None
        self.classifier: Optional[nn.Linear] = None

    # ------------------------------------------------------------------ #
    # model construction
    # ------------------------------------------------------------------ #
    def _make_encoder(self) -> nn.Module:
        raise NotImplementedError

    def build(self, window: Optional[int] = None, n_classes: Optional[int] = None) -> "NNSelector":
        """Instantiate the encoder and classifier (idempotent)."""
        if window is not None:
            self.window = window
        if n_classes is not None:
            self.n_classes = n_classes
        if self.encoder is None:
            nn.init.set_seed(self.seed)
            self.encoder = self._make_encoder()
            self.classifier = nn.Linear(self.encoder.feature_dim, self.n_classes)
        return self

    @property
    def feature_dim(self) -> int:
        if self.encoder is None:
            raise RuntimeError("selector is not built yet; call build() or fit() first")
        return self.encoder.feature_dim

    def parameters(self):
        self.build()
        return self.encoder.parameters() + self.classifier.parameters()

    def train_mode(self, mode: bool = True) -> None:
        if self.encoder is not None:
            self.encoder.train(mode)
            self.classifier.train(mode)

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_input(windows: np.ndarray) -> nn.Tensor:
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[:, None, :]
        return nn.Tensor(windows)

    def forward(self, windows: np.ndarray) -> Tuple[nn.Tensor, nn.Tensor]:
        """Return (logits, features) for a batch of windows."""
        self.build()
        features = self.encoder(self._to_input(windows))
        logits = self.classifier(features)
        return logits, features

    def encode(self, windows: np.ndarray) -> np.ndarray:
        """Feature vectors ``z_T`` without gradient tracking."""
        self.build()
        self.train_mode(False)
        with nn.no_grad():
            features = self.encoder(self._to_input(windows))
        return features.numpy()

    # ------------------------------------------------------------------ #
    # Selector interface
    # ------------------------------------------------------------------ #
    def fit(self, dataset: SelectorDataset, config=None, **overrides) -> "NNSelector":
        """Train with the standard framework, or with KDSelector modules.

        ``config`` is a :class:`repro.core.config.TrainerConfig`; when it is
        omitted a plain configuration (hard labels only, no pruning) built
        from this selector's ``epochs`` / ``batch_size`` / ``lr`` is used.
        Extra keyword arguments override fields of that configuration.
        """
        from ..core.config import TrainerConfig
        from ..core.trainer import SelectorTrainer

        if config is None:
            config = TrainerConfig(epochs=self.epochs, batch_size=self.batch_size, lr=self.lr, seed=self.seed)
        if overrides:
            config = config.replace(**overrides)
        trainer = SelectorTrainer(self, config)
        self.last_report_ = trainer.fit(dataset)
        return self

    def predict_proba(self, windows: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        from ..core.inference import DEFAULT_PREDICT_BATCH_SIZE, batched_predict_proba

        self.build()
        self.train_mode(False)

        def proba_fn(chunk: np.ndarray) -> np.ndarray:
            with nn.no_grad():
                logits, _ = self.forward(chunk)
                return nn.functional.softmax(logits, axis=-1).numpy()

        return batched_predict_proba(
            proba_fn, windows, self.n_classes,
            batch_size=batch_size or DEFAULT_PREDICT_BATCH_SIZE,
        )

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(window={self.window}, n_classes={self.n_classes})"


@register_selector("ConvNet", neural=True)
class ConvNetSelector(NNSelector):
    """Convolutional selector (spatial feature learning baseline)."""

    def _make_encoder(self) -> nn.Module:
        return ConvNetEncoder(**self.arch_kwargs)


@register_selector("ResNet", neural=True)
class ResNetSelector(NNSelector):
    """ResNet selector — the paper's default architecture."""

    def _make_encoder(self) -> nn.Module:
        return ResNetEncoder(**self.arch_kwargs)


@register_selector("InceptionTime", neural=True)
class InceptionTimeSelector(NNSelector):
    """InceptionTime selector (multi-scale convolutional kernels)."""

    def _make_encoder(self) -> nn.Module:
        return InceptionTimeEncoder(**self.arch_kwargs)


@register_selector("Transformer", neural=True)
class TransformerSelector(NNSelector):
    """Transformer selector with a convolutional stem (SiT-stem)."""

    def _make_encoder(self) -> nn.Module:
        kwargs = dict(self.arch_kwargs)
        kwargs.setdefault("seed", self.seed)
        return TransformerEncoder(**kwargs)


@register_selector("MLP", neural=True)
class MLPSelector(NNSelector):
    """Plain MLP selector over the flattened window."""

    def _make_encoder(self) -> nn.Module:
        return MLPEncoder(window=self.window, **self.arch_kwargs)


@register_selector("LSTMSelector", neural=True)
class LSTMSelector(NNSelector):
    """Recurrent selector using the final LSTM hidden state."""

    def _make_encoder(self) -> nn.Module:
        return LSTMEncoder(**self.arch_kwargs)
