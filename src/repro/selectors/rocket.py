"""Rocket selector: random convolutional kernels + ridge classifier.

This reproduces the kernel-based baseline ("Rocket"/MiniRocket) of the
paper: a large set of random 1-D convolution kernels transforms each window
into PPV (proportion of positive values) and max features, and a ridge
classifier is trained on top.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.windows import SelectorDataset
from ..ml import RidgeClassifier, StandardScaler
from .base import Selector, register_selector


class RocketFeatureTransform:
    """Random convolution kernels producing (PPV, max) features per kernel."""

    def __init__(self, n_kernels: int = 256, seed: int = 0) -> None:
        self.n_kernels = n_kernels
        self.seed = seed
        self._kernels = None

    def fit(self, window_length: int) -> "RocketFeatureTransform":
        rng = np.random.default_rng(self.seed)
        kernels = []
        for _ in range(self.n_kernels):
            length = int(rng.choice([7, 9, 11]))
            weights = rng.normal(0.0, 1.0, size=length)
            weights -= weights.mean()
            bias = rng.uniform(-1.0, 1.0)
            max_exponent = max(0, int(np.log2((window_length - 1) / (length - 1)))) if window_length > length else 0
            dilation = 2 ** int(rng.integers(0, max_exponent + 1))
            kernels.append((weights, bias, dilation))
        self._kernels = kernels
        return self

    def _effective_dilation(self, klen: int, dilation: int, length: int) -> int:
        """Dilation after clamping kernels whose span overruns the window."""
        if (klen - 1) * dilation + 1 > length:
            return max(1, (length - 1) // (klen - 1))
        return dilation

    def transform(self, windows: np.ndarray) -> np.ndarray:
        """Grouped im2col transform.

        Kernels sharing ``(length, effective dilation)`` read the exact
        same patch matrix, so the expensive gather runs once per group
        (a dozen groups versus hundreds of kernels) instead of once per
        kernel.  Each kernel still applies as its own matrix–vector
        product over the shared patches — the same operands in the same
        order as the per-kernel reference loop, so the features are
        bitwise identical to :meth:`_transform_per_kernel` (a grouped
        multi-kernel GEMM would not be: BLAS changes its summation order
        with the operand shape).
        """
        if self._kernels is None:
            raise RuntimeError("transform must be fitted before use")
        x = np.asarray(windows, dtype=np.float64)
        n, length = x.shape
        features = np.zeros((n, 2 * self.n_kernels))
        groups: dict = {}
        for k, (weights, _, dilation) in enumerate(self._kernels):
            klen = len(weights)
            groups.setdefault(
                (klen, self._effective_dilation(klen, dilation, length)), []).append(k)
        for (klen, dilation), kernel_ids in groups.items():
            span = (klen - 1) * dilation + 1
            idx = np.arange(klen) * dilation
            out_len = length - span + 1
            positions = idx[None, :] + np.arange(out_len)[:, None]
            patches = x[:, positions]  # (n, out_len, klen) — shared gather
            for k in kernel_ids:
                weights, bias, _ = self._kernels[k]
                conv = patches @ weights + bias  # (n, out_len)
                features[:, 2 * k] = (conv > 0).mean(axis=1)
                features[:, 2 * k + 1] = conv.max(axis=1)
        return features

    def _transform_per_kernel(self, windows: np.ndarray) -> np.ndarray:
        """Reference implementation: one gather + matvec per kernel.

        Kept as the ground truth for the bitwise regression test of the
        grouped :meth:`transform` above.
        """
        if self._kernels is None:
            raise RuntimeError("transform must be fitted before use")
        x = np.asarray(windows, dtype=np.float64)
        n, length = x.shape
        features = np.zeros((n, 2 * self.n_kernels))
        for k, (weights, bias, dilation) in enumerate(self._kernels):
            klen = len(weights)
            dilation = self._effective_dilation(klen, dilation, length)
            span = (klen - 1) * dilation + 1
            idx = np.arange(klen) * dilation
            out_len = length - span + 1
            positions = idx[None, :] + np.arange(out_len)[:, None]
            conv = x[:, positions] @ weights + bias  # (n, out_len)
            features[:, 2 * k] = (conv > 0).mean(axis=1)
            features[:, 2 * k + 1] = conv.max(axis=1)
        return features


@register_selector("Rocket")
class RocketSelector(Selector):
    """Random-kernel features + ridge classifier."""

    def __init__(self, n_classes: int = 12, n_kernels: int = 256, alpha: float = 1.0, seed: int = 0) -> None:
        self.n_classes = n_classes
        self.n_kernels = n_kernels
        self.alpha = alpha
        self.seed = seed
        self.transform = RocketFeatureTransform(n_kernels=n_kernels, seed=seed)
        self.scaler = StandardScaler()
        self.classifier: Optional[RidgeClassifier] = None
        self.classes_seen_: Optional[np.ndarray] = None

    def fit(self, dataset: SelectorDataset, **kwargs) -> "RocketSelector":
        del kwargs
        self.n_classes = dataset.n_classes
        self.transform.fit(dataset.windows.shape[1])
        features = self.scaler.fit_transform(self.transform.transform(dataset.windows))
        self.classifier = RidgeClassifier(alpha=self.alpha)
        self.classifier.fit(features, dataset.hard_labels)
        self.classes_seen_ = np.asarray(self.classifier.classes_, dtype=int)
        return self

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        if self.classifier is None:
            raise RuntimeError("selector must be fitted before predict")
        features = self.scaler.transform(self.transform.transform(np.asarray(windows, dtype=np.float64)))
        partial = self.classifier.predict_proba(features)
        proba = np.zeros((len(windows), self.n_classes))
        proba[:, self.classes_seen_] = partial
        return proba
