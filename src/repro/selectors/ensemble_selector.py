"""A voting ensemble of selectors.

Not part of the paper's baseline list, but a natural extension of the
selector zoo: several fitted selectors vote (with optional weights) on the
TSAD model to use.  Useful when no single selector family dominates and as
an upper-bound reference for the individual selectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.windows import SelectorDataset
from .base import Selector


class SelectorEnsemble(Selector):
    """Probability-averaging ensemble over a list of member selectors.

    Deliberately not added to the selector registry: it is composed of
    already-constructed members rather than built from a name, so the demo
    system's 15-selector zoo stays as the paper describes it.
    """

    name = "SelectorEnsemble"

    def __init__(self, members: Optional[Sequence[Selector]] = None,
                 weights: Optional[Sequence[float]] = None) -> None:
        self.members: List[Selector] = list(members or [])
        if weights is not None and len(weights) != len(self.members):
            raise ValueError("weights must match the number of members")
        self.weights = list(weights) if weights is not None else None
        self.n_classes: int = 0

    def add(self, selector: Selector, weight: float = 1.0) -> "SelectorEnsemble":
        """Add a member (before fitting)."""
        self.members.append(selector)
        if self.weights is None:
            self.weights = [1.0] * (len(self.members) - 1)
        self.weights.append(weight)
        return self

    def fit(self, dataset: SelectorDataset, **kwargs) -> "SelectorEnsemble":
        if not self.members:
            raise RuntimeError("SelectorEnsemble has no members to fit")
        self.n_classes = dataset.n_classes
        for member in self.members:
            member.fit(dataset, **kwargs)
        return self

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        if not self.members:
            raise RuntimeError("SelectorEnsemble has no members")
        weights = self.weights or [1.0] * len(self.members)
        total = np.zeros((len(windows), self.n_classes or self.members[0].predict_proba(windows).shape[1]))
        weight_sum = 0.0
        for member, weight in zip(self.members, weights):
            proba = member.predict_proba(windows)
            if total.shape[1] == 0:
                total = np.zeros_like(proba)
            total += weight * proba
            weight_sum += weight
        return total / max(weight_sum, 1e-12)

    def member_agreements(self, windows: np.ndarray) -> Dict[int, float]:
        """Fraction of windows on which each pair of members agrees."""
        predictions = [member.predict(windows) for member in self.members]
        agreements: Dict[int, float] = {}
        pair = 0
        for i in range(len(predictions)):
            for j in range(i + 1, len(predictions)):
                agreements[pair] = float((predictions[i] == predictions[j]).mean())
                pair += 1
        return agreements

    def __repr__(self) -> str:
        return f"SelectorEnsemble(members={[m.__class__.__name__ for m in self.members]})"
