"""Runtime knobs of the kernel layer: memory budgets and worker defaults.

The tiled kernels bound their scratch memory by a byte budget instead of a
tile-count heuristic, so one setting scales from laptops to large boxes:

* ``REPRO_MEMORY_BUDGET_MB`` — per-kernel scratch budget (default 256 MB).
  ``kneighbors`` switches from the dense full-matrix path to memory-budgeted
  tiles when the distance matrix would exceed it.
* ``REPRO_MAX_WORKERS`` — default worker count for fan-out work (oracle
  labelling, detection fan-out, per-stream scoring).  0 = sequential.
* ``REPRO_WORKER_MODE`` — ``thread`` (default) or ``process``; see
  :class:`repro.serving.workers.WorkerPool`.

CLI flags (``--workers``, ``--worker-mode``, ``--precision``) override the
environment; explicit function arguments override both.
"""

from __future__ import annotations

import os
from typing import Optional

#: default scratch budget of one tiled kernel invocation, in bytes
DEFAULT_MEMORY_BUDGET_MB = 256

WORKER_MODES = ("thread", "process")


def memory_budget_bytes(override_mb: Optional[float] = None) -> int:
    """Resolve the kernel scratch budget (argument > env > default), in bytes."""
    if override_mb is None:
        override_mb = float(os.environ.get("REPRO_MEMORY_BUDGET_MB",
                                           DEFAULT_MEMORY_BUDGET_MB))
    if override_mb <= 0:
        raise ValueError("memory budget must be positive")
    return int(override_mb * 1024 * 1024)


def default_max_workers(override: Optional[int] = None) -> int:
    """Resolve the fan-out worker count (argument > ``REPRO_MAX_WORKERS`` > 0)."""
    if override is not None:
        return int(override)
    return int(os.environ.get("REPRO_MAX_WORKERS", "0"))


def default_worker_mode(override: Optional[str] = None) -> str:
    """Resolve the worker mode (argument > ``REPRO_WORKER_MODE`` > thread)."""
    mode = override if override is not None else os.environ.get("REPRO_WORKER_MODE", "thread")
    if mode not in WORKER_MODES:
        raise ValueError(f"unknown worker mode {mode!r}; expected one of {WORKER_MODES}")
    return mode
