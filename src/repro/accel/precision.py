"""Precision policy: the float32 fast path, float64 by default.

Every accelerated kernel (``repro.accel.distances``, ``repro.accel.profile``)
and the ``repro.nn`` substrate resolves its working dtype through this
module.  The default is **float64**, so every bitwise-equality guarantee in
the codebase (serving cache, streaming tail re-scoring, selector
determinism) is untouched unless the caller *opts in* to float32.

Three override levels, strongest first:

1. per-call ``dtype=...`` argument on a kernel,
2. a :class:`use_precision` context (thread-local, nestable),
3. the ``REPRO_PRECISION`` environment variable or
   :func:`set_default_precision` (the CLI's ``--precision`` flag).

float32 roughly halves memory traffic and doubles BLAS throughput; the
accuracy cost per kernel is documented in ``docs/performance.md``.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Union

import numpy as np

PRECISIONS = {
    "float32": np.float32,
    "float64": np.float64,
}

#: process-wide default set programmatically (e.g. the CLI ``--precision``
#: flag); ``None`` falls back to the environment / built-in default
_process_default: Optional[str] = None

_thread_state = threading.local()


def _validate(name: str) -> str:
    if name not in PRECISIONS:
        raise ValueError(
            f"unknown precision {name!r}; expected one of {sorted(PRECISIONS)}"
        )
    return name


def set_default_precision(name: Optional[str]) -> None:
    """Set the process-wide default precision (``None`` resets to the env)."""
    global _process_default
    _process_default = _validate(name) if name is not None else None


def default_precision() -> str:
    """The process-wide precision: programmatic > ``REPRO_PRECISION`` > float64."""
    if _process_default is not None:
        return _process_default
    return _validate(os.environ.get("REPRO_PRECISION", "float64"))


def current_precision() -> str:
    """The calling thread's active precision (innermost override wins)."""
    stack = getattr(_thread_state, "stack", None)
    if stack:
        return stack[-1]
    return default_precision()


def resolve_dtype(dtype: Union[str, np.dtype, type, None] = None) -> np.dtype:
    """Resolve a per-call dtype override against the active precision policy."""
    if dtype is None:
        return np.dtype(PRECISIONS[current_precision()])
    if isinstance(dtype, str) and dtype in PRECISIONS:
        return np.dtype(PRECISIONS[dtype])
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported kernel dtype {dtype!r}; use float32 or float64")
    return resolved


class use_precision:
    """Context manager overriding the precision for the calling thread.

    >>> with use_precision("float32"):
    ...     dist, idx = kneighbors(q, r, k=5)   # float32 kernels
    """

    def __init__(self, name: str) -> None:
        self._name = _validate(name)

    def __enter__(self) -> "use_precision":
        stack = getattr(_thread_state, "stack", None)
        if stack is None:
            stack = _thread_state.stack = []
        stack.append(self._name)
        return self

    def __exit__(self, *exc) -> None:
        _thread_state.stack.pop()
