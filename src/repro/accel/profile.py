"""Fast matrix-profile kernels: rolling statistics, MASS, diagonal self-join.

The pre-accel profile kernel z-normalised every subsequence and ran a
blocked all-pairs GEMM — O(n²·w) flops (kept as
:func:`repro.accel.reference.matrix_profile_matmul`).  This module removes
the O(w) factor:

* :func:`moving_mean_std` — per-window mean/std of every subsequence from
  two cumulative sums, O(n) instead of materialising the (n, w) window
  matrix.
* :func:`sliding_dot_products` — MASS-style sliding dot products of query
  patterns against a series via rFFT, O(n log n) per query instead of
  O(n·w).  This is the cross-join primitive (NORMA's normal-model scan,
  single-query motif lookups on streams).
* :func:`znorm_centroid_distances` — z-normalised Euclidean distance of
  every subsequence to a set of patterns, built on the two above; never
  materialises the z-normalised window matrix.
* :func:`matrix_profile` — the self-join profile via cumulative sums along
  *diagonals* of the pair matrix (the STOMP recurrence in closed form):
  O(n²) total work, each pair touched once, O(block·n) scratch.  For the
  self-join this beats batched FFT on CPU — sliding dots of query *i+1*
  share all but two products with query *i*, which the per-diagonal
  cumulative sum exploits and an FFT per query cannot.

Equivalence: in float64 the diagonal profile matches the reference matmul
profile to atol ≤ 1e-8 (property-tested; the two compute the same
correlations with different summation orders, so bitwise equality is not
achievable).  The float32 fast path keeps the rolling accumulation in
float64, leaving only input rounding: profile error ~1e-4, fine for
anomaly *ranking*.  Windows whose variance sits within ~1e-12 of the
constant-window clamp may resolve differently from the reference (rolling
variance vs two-pass variance); exactly constant windows agree.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .precision import resolve_dtype

__all__ = [
    "moving_mean_std",
    "sliding_dot_products",
    "znorm_centroid_distances",
    "matrix_profile",
]

#: below this window length the diagonal kernel hands off to the reference
#: matmul kernel (see :func:`matrix_profile`)
_MIN_DIAG_WINDOW = 8


def moving_mean_std(series: np.ndarray, window: int) -> Tuple[np.ndarray, np.ndarray]:
    """Mean and std of every length-``window`` subsequence, via cumulative sums.

    Returns two float64 arrays of length ``len(series) - window + 1``.
    O(n) time and memory; the variance is computed as ``E[x²] - E[x]²``
    (clamped at zero), so centre/scale the series first when its magnitude
    is large relative to its variation.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    if window <= 0:
        raise ValueError("window must be positive")
    if len(series) < window:
        return np.zeros(0), np.zeros(0)
    zero = np.zeros(1)
    csum = np.cumsum(np.concatenate([zero, series]))
    csq = np.cumsum(np.concatenate([zero, series * series]))
    mu = (csum[window:] - csum[:-window]) / window
    var = np.maximum((csq[window:] - csq[:-window]) / window - mu * mu, 0.0)
    return mu, np.sqrt(var)


def _next_pow2(n: int) -> int:
    return 1 << max(int(n) - 1, 0).bit_length()


def sliding_dot_products(queries: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Dot product of each query with every same-length subsequence of ``series``.

    MASS-style: one rFFT of the series, one batched rFFT of the (reversed)
    queries, a pointwise product and an inverse transform.  ``queries`` may
    be 1-D (one pattern) or 2-D ``(k, w)``; the result is ``(n - w + 1,)``
    or ``(k, n - w + 1)`` float64.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    queries = np.asarray(queries, dtype=np.float64)
    single = queries.ndim == 1
    q = queries[None, :] if single else queries
    if q.ndim != 2:
        raise ValueError("queries must be 1-D or 2-D")
    w = q.shape[1]
    n_out = len(series) - w + 1
    if n_out <= 0:
        shape = (0,) if single else (q.shape[0], 0)
        return np.zeros(shape)
    nfft = _next_pow2(len(series) + w - 1)
    fs = np.fft.rfft(series, nfft)
    fq = np.fft.rfft(q[:, ::-1], nfft, axis=1)
    conv = np.fft.irfft(fq * fs[None, :], nfft, axis=1)
    out = conv[:, w - 1: w - 1 + n_out]
    return out[0] if single else out


def znorm_centroid_distances(
    series: np.ndarray,
    window: int,
    centroids: np.ndarray,
    dtype=None,
) -> np.ndarray:
    """Distance of every z-normalised subsequence to each centroid pattern.

    Returns ``(n_windows, k)`` distances equal (to rolling-statistics
    accuracy) to ``norm(zscore(window) - centroid)`` — without building the
    (n, w) z-normalised window matrix: O(k · n log n) time, O(n · k) memory.
    Subsequences with (near-)zero variance are treated as all-zero z-vectors,
    matching :func:`repro.ml.scalers.zscore`'s constant-series convention.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    centroids = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
    if centroids.shape[1] != window:
        raise ValueError(
            f"centroid length {centroids.shape[1]} does not match window {window}")
    out_dtype = resolve_dtype(dtype)
    # Globally centre/scale first: z-normalised windows are invariant to it,
    # and it keeps the E[x²]−E[x]² rolling variance (and the FFT dot
    # products) well conditioned for series with a large absolute level.
    if len(series) >= window:
        gstd = series.std()
        series = (series - series.mean()) / (gstd if gstd > 1e-12 else 1.0)
    mu, sig = moving_mean_std(series, window)
    clamped = sig < 1e-12
    inv = 1.0 / np.where(clamped, 1.0, sig)
    # ||z||² is w for regular windows and ~0 for (near-)constant ones.
    nz2 = np.where(clamped, 0.0, float(window))
    qt = sliding_dot_products(centroids, series)        # (k, n_windows)
    # z_t · c = (x_t · c - mu_t * sum(c)) / sig_t ; zero for clamped windows.
    zdot = (qt - mu[None, :] * centroids.sum(axis=1)[:, None]) * inv[None, :]
    zdot[:, clamped] = 0.0
    c_sq = (centroids ** 2).sum(axis=1)
    d2 = nz2[:, None] - 2.0 * zdot.T + c_sq[None, :]
    return np.sqrt(np.maximum(d2, 0.0)).astype(out_dtype, copy=False)


def matrix_profile(
    series: np.ndarray,
    window: int,
    exclusion: Optional[int] = None,
    block: int = 256,
    dtype=None,
) -> np.ndarray:
    """Self-join matrix profile (z-normalised Euclidean, trivial-match excluded).

    Diagonal formulation: for a pair offset ``d``, the sliding dot products
    ``QT(t, t+d)`` over all ``t`` are rolling-window sums of the product
    series ``s[t]·s[t+d]`` — one multiply and one cumulative sum per
    diagonal, processed ``block`` diagonals at a time.  Each pair is touched
    once (the later index is covered by a strided anti-diagonal maximum over
    the same block), scratch stays at O(block · n).

    ``dtype`` selects the working precision (the rolling accumulation is
    always float64); the returned profile is float64.  Series shorter than
    ``window + exclusion`` have every pair excluded and return zeros, like
    the reference kernel.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    if window <= 0:
        raise ValueError("window must be positive")
    n = len(series) - window + 1
    if n <= 0:
        return np.zeros(max(n, 0))
    exclusion = exclusion if exclusion is not None else max(1, window // 2)
    if window < _MIN_DIAG_WINDOW:
        # Tiny windows amplify the rolling-sum cancellation through 1/sigma
        # (w=2 z-vectors are ±1 exactly); the blocked matmul is both exact
        # and cheap there, since its extra factor is O(window).
        from .reference import matrix_profile_matmul

        return matrix_profile_matmul(series, window, exclusion=exclusion)
    dt = resolve_dtype(dtype)
    itemsize = dt.itemsize

    # Global centre/scale: z-normalised distances are invariant to it, and
    # O(1)-magnitude values keep the cumulative sums well conditioned.
    gstd = series.std()
    s64 = (series - series.mean()) / (gstd if gstd > 1e-12 else 1.0)
    mu64, sig64 = moving_mean_std(s64, window)
    inv64 = 1.0 / np.where(sig64 < 1e-12, 1.0, sig64)

    a = inv64.astype(dt, copy=False)           # 1 / sigma per window
    u = (mu64 * inv64).astype(dt, copy=False)  # mu / sigma per window
    wu = (np.float64(window) * mu64 * inv64).astype(dt, copy=False)  # w·u

    # best[i] = max over partners of the scaled dot q̃ = QT·a_i·a_j − w·u_i·u_j;
    # d²= 2w − 2·q̃ is monotone decreasing in q̃, so max-q̃ ⇔ min-d² and the
    # affine step happens once at the end instead of once per pair.
    best = np.full(n, -np.inf, dtype=dt)
    d_lo = exclusion + 1
    blk = max(int(block), 1)
    if d_lo < n:
        f64 = np.float64().itemsize
        # Products and their cumulative sums stay float64 in both precision
        # modes: NumPy's mixed-dtype cumsum is ~2x slower than the native
        # one, and float64 accumulation is what keeps the float32 fast
        # path's profile error at ~1e-3 instead of ~1e0.
        s_pad64 = np.concatenate([s64, np.zeros(blk)])
        pad = np.zeros(blk, dtype=dt)
        a_pad = np.concatenate([a, pad])
        u_pad = np.concatenate([u, pad])
        # One buffer set, reused by every block (views shrink with T):
        # fresh allocations per block would spend more time page-faulting
        # than computing.
        T0 = n - d_lo
        Tp0 = T0 + window - 1
        P_flat = np.empty(blk * Tp0, dtype=np.float64)
        C_flat = np.empty(blk * (Tp0 + 1), dtype=np.float64)
        Q_flat = np.empty(blk * (T0 + blk - 1), dtype=dt)
        tmp_flat = np.empty(blk * T0, dtype=dt)
        for d0 in range(d_lo, n, blk):
            B = min(blk, n - d0)
            T = n - d0                       # pairs on the longest diagonal
            Tp = T + window - 1              # product terms feeding those pairs
            # Row j is diagonal d0+j: P[j, t] = s[t] · s[t + d0 + j].
            V = as_strided(s_pad64[d0:], shape=(B, Tp), strides=(f64, f64))
            P = P_flat[:B * Tp].reshape(B, Tp)
            np.multiply(s64[None, :Tp], V, out=P)
            C = C_flat[:B * (Tp + 1)].reshape(B, Tp + 1)
            C[:, 0] = 0.0
            np.cumsum(P, axis=1, out=C[:, 1:])
            # Q gets B-1 spare columns so the anti-diagonal view below stays
            # in bounds; the spare region doubles as the -inf mask.  Rows are
            # carved back-to-back out of the flat buffer — the skewed view
            # depends on that adjacency.
            W = T + B - 1
            Q = Q_flat[:B * W].reshape(B, W)
            qt = Q[:, :T]
            np.subtract(C[:, window:], C[:, :-window], out=qt, casting="same_kind")
            qt *= a[None, :T]
            qt *= as_strided(a_pad[d0:], shape=(B, T), strides=(itemsize, itemsize))
            tmp = tmp_flat[:B * T].reshape(B, T)
            np.multiply(wu[None, :T],
                        as_strided(u_pad[d0:], shape=(B, T), strides=(itemsize, itemsize)),
                        out=tmp)
            qt -= tmp
            if B > 1:
                Q[:, T:] = -np.inf
            for j in range(1, B):            # ragged corner: partner index ≥ n
                Q[j, T - j: T] = -np.inf
            # Earlier pair index: column-wise maximum over the block.
            np.maximum(best[:T], qt.max(axis=0), out=best[:T])
            # Later pair index p = t + d0 + j: anti-diagonals of Q, exposed as
            # rows of a skewed view (out-of-range entries land in the -inf
            # spare region of the previous row).
            skew = as_strided(Q, shape=(B, W), strides=((W - 1) * itemsize, itemsize))
            np.maximum(best[d0:], skew.max(axis=0)[:T], out=best[d0:])

    d2 = 2.0 * window - 2.0 * best.astype(np.float64, copy=False)
    profile = np.sqrt(np.maximum(d2, 0.0))
    # A series shorter than ~2 windows may have every pair excluded.
    profile[~np.isfinite(profile)] = 0.0
    return profile
