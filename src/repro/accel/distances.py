"""Memory-budgeted tiled pairwise-distance kernels.

The historical k-NN path materialises the full (m, n) distance matrix —
quadratic memory, which is what caps LOF/KNN/OCSVM at a few thousand
windows.  :func:`tile_kneighbors` streams the same computation through
(tile × tile) blocks with a running top-k merge, so peak scratch is the
byte budget instead of O(n²).

**Bitwise tile-independence.**  Changing the tile size must not change the
result, or streaming-vs-batch and cache-hit-vs-recompute guarantees break
upstream.  Two ingredients make every element's bits independent of the
tiling:

* :func:`padded_matmul_t` pads both *output* dimensions of each GEMM to a
  multiple of 16.  OpenBLAS handles output-dim remainder blocks with
  different micro-kernels, so un-padded tile GEMMs disagree with the full
  GEMM in the last ulp along the remainder edges; padded ones agree
  everywhere (property-tested in ``tests/test_accel.py``).
* the top-k merge orders candidates by ``(distance, index)`` via a stable
  lexicographic sort, so duplicate-distance ties always resolve to the
  lowest reference index, no matter which tile a candidate arrived in.

The self-join (``reference is query``) walks only the upper triangle of
the tile grid and reuses each block transposed for the mirrored rows —
half the GEMM work.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .config import memory_budget_bytes
from .precision import resolve_dtype

__all__ = ["padded_matmul_t", "tile_kneighbors"]

#: output-dimension padding multiple; covers OpenBLAS micro-kernel widths
_GEMM_PAD = 16


def padded_matmul_t(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b.T`` with both output dimensions zero-padded to multiples of 16.

    Always copies the operands into fresh padded buffers so every block —
    including a self-join's diagonal blocks, which would otherwise take
    BLAS's ``syrk`` shortcut — runs through the identical GEMM code path.
    The padding makes each output element's bits independent of how the
    operands were tiled out of a larger matrix.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    m, d = a.shape
    n = b.shape[0]
    mp = -(-m // _GEMM_PAD) * _GEMM_PAD
    np_ = -(-n // _GEMM_PAD) * _GEMM_PAD
    a_pad = np.zeros((mp, d), dtype=a.dtype)
    a_pad[:m] = a
    # The right operand is materialised C-contiguous as (d, n): a transposed
    # *view* would take BLAS's transB path, whose remainder handling is what
    # the padding is meant to sidestep.
    bt_pad = np.zeros((d, np_), dtype=b.dtype)
    bt_pad[:, :n] = b.T
    return (a_pad @ bt_pad)[:m, :n]


def _sq_dist_block(
    q: np.ndarray, r: np.ndarray, q_sq: np.ndarray, r_sq: np.ndarray
) -> np.ndarray:
    """One (rows, cols) block of squared distances, canonical bit pattern."""
    d = q_sq[:, None] + r_sq[None, :] - 2.0 * padded_matmul_t(q, r)
    np.maximum(d, 0.0, out=d)
    return d


def _merge_topk(
    best_d: np.ndarray,
    best_i: np.ndarray,
    block_d: np.ndarray,
    col_start: int,
) -> None:
    """Fold a distance block into the per-row running top-k, in place.

    Candidates are ranked by ``(distance, reference index)``; the selection
    is a pure function of the candidate multiset, so merge order (and hence
    tiling) cannot change the outcome.
    """
    rows, cols = block_d.shape
    k = best_d.shape[1]
    cand_d = np.concatenate([best_d, block_d], axis=1)
    block_i = np.broadcast_to(np.arange(col_start, col_start + cols)[None, :],
                              (rows, cols))
    cand_i = np.concatenate([best_i, block_i], axis=1)
    order = np.lexsort((cand_i, cand_d), axis=1)[:, :k]
    best_d[:] = np.take_along_axis(cand_d, order, axis=1)
    best_i[:] = np.take_along_axis(cand_i, order, axis=1)


def _mask_self_matches(
    block: np.ndarray, row_start: int, col_start: int
) -> None:
    """Set entries whose global row and column index coincide to +inf."""
    rows, cols = block.shape
    lo = max(row_start, col_start)
    hi = min(row_start + rows, col_start + cols)
    if lo < hi:
        r = np.arange(lo, hi)
        block[r - row_start, r - col_start] = np.inf


def _default_tile(budget: int, itemsize: int, k: int) -> int:
    # Scratch per tile row ≈ tile_cols distances + the (k + tile_cols)
    # candidate keys and int64 indices of the merge; ~4 copies is a safe
    # envelope, hence budget / (tile² · itemsize · 4) per square tile.
    tile = int(np.sqrt(budget / (4 * itemsize)))
    return max(tile, 4 * max(k, 1), 64)


def tile_kneighbors(
    query: np.ndarray,
    reference: np.ndarray,
    k: int,
    exclude_self: bool = False,
    tile_rows: Optional[int] = None,
    tile_cols: Optional[int] = None,
    memory_budget_mb: Optional[float] = None,
    dtype=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(distances, indices) of the ``k`` nearest reference rows, tiled.

    Semantics match :func:`repro.accel.reference.kneighbors_dense` — ``k``
    is clamped to the available neighbour count, ``exclude_self`` masks
    positionally identical rows — except that equal-distance ties always
    resolve to the lowest reference index (the dense path inherits
    ``argpartition``'s arbitrary tie order).  Peak scratch memory is
    O(tile_rows · tile_cols), derived from the memory budget when the tile
    sizes are not given; results are bitwise independent of the tiling.
    """
    self_join = reference is query
    dt = resolve_dtype(dtype)
    q = np.ascontiguousarray(np.asarray(query), dtype=dt)
    r = q if self_join else np.ascontiguousarray(np.asarray(reference), dtype=dt)
    m, n = q.shape[0], r.shape[0]
    k_eff = max(1, min(k, n - (1 if exclude_self else 0)))

    budget = memory_budget_bytes(memory_budget_mb)
    default = _default_tile(budget, dt.itemsize, k_eff)
    tr = min(m, tile_rows if tile_rows is not None else default)
    tc = min(n, tile_cols if tile_cols is not None else default)
    tr = max(int(tr), 1)
    tc = max(int(tc), 1)
    if self_join:
        tc = tr  # symmetric walk needs a square tile grid

    # Row norms come from the full arrays once, so every tile combines the
    # exact same scalars regardless of the tiling.
    q_sq = (q ** 2).sum(axis=1)
    r_sq = q_sq if self_join else (r ** 2).sum(axis=1)

    best_d = np.full((m, k_eff), np.inf, dtype=dt)
    best_i = np.full((m, k_eff), n, dtype=np.int64)  # n = "no candidate" sentinel

    if self_join:
        starts = list(range(0, m, tr))
        for bi, i0 in enumerate(starts):
            i1 = min(i0 + tr, m)
            for j0 in starts[bi:]:
                j1 = min(j0 + tr, m)
                block = _sq_dist_block(q[i0:i1], q[j0:j1], q_sq[i0:i1], q_sq[j0:j1])
                if j0 == i0:
                    # GEMM output is not guaranteed bitwise symmetric; mirror
                    # the upper triangle so every (i, j) / (j, i) pair shares
                    # the upper-triangle bits no matter how the grid is cut.
                    il, jl = np.tril_indices(i1 - i0, k=-1)
                    block[il, jl] = block[jl, il]
                if exclude_self:
                    _mask_self_matches(block, i0, j0)
                _merge_topk(best_d[i0:i1], best_i[i0:i1], block, j0)
                if j0 > i0:  # mirrored rows reuse the block transposed
                    _merge_topk(best_d[j0:j1], best_i[j0:j1],
                                np.ascontiguousarray(block.T), i0)
    else:
        for i0 in range(0, m, tr):
            i1 = min(i0 + tr, m)
            for j0 in range(0, n, tc):
                j1 = min(j0 + tc, n)
                block = _sq_dist_block(q[i0:i1], r[j0:j1], q_sq[i0:i1], r_sq[j0:j1])
                if exclude_self:
                    _mask_self_matches(block, i0, j0)
                _merge_topk(best_d[i0:i1], best_i[i0:i1], block, j0)

    return np.sqrt(best_d), best_i
