"""``repro.accel`` — the shared fast-kernel layer of the hot compute paths.

Detectors, ``repro.ml`` and the streaming scorer all route their heavy
numerics through this package:

* :mod:`repro.accel.profile`   — matrix-profile kernels: rolling
  mean/std via cumulative sums, MASS rFFT sliding dot products, and the
  O(n²) diagonal self-join profile that replaces the O(n²·w) blocked
  matmul.
* :mod:`repro.accel.distances` — memory-budgeted tiled pairwise-distance
  kernels with a running top-k merge and a symmetric self-join fast path;
  peak memory O(tile²) instead of O(n²), bitwise independent of tiling.
* :mod:`repro.accel.precision` — the precision policy: float64 everywhere
  by default (preserving every bitwise-equality guarantee), float32 fast
  path via ``REPRO_PRECISION``, :class:`use_precision` or per-call
  ``dtype=``.
* :mod:`repro.accel.config`    — memory budgets and worker-pool defaults
  (``REPRO_MEMORY_BUDGET_MB``, ``REPRO_MAX_WORKERS``, ``REPRO_WORKER_MODE``).
* :mod:`repro.accel.reference` — the pre-accel kernels, kept bit-for-bit
  as equivalence oracles for tests and benchmarks.

``docs/performance.md`` documents the speed/memory/accuracy trade-offs and
``benchmarks/bench_detector_kernels.py`` pins the speedups.
"""

from .config import (
    DEFAULT_MEMORY_BUDGET_MB,
    default_max_workers,
    default_worker_mode,
    memory_budget_bytes,
)
from .distances import padded_matmul_t, tile_kneighbors
from .precision import (
    PRECISIONS,
    current_precision,
    default_precision,
    resolve_dtype,
    set_default_precision,
    use_precision,
)
from .profile import (
    matrix_profile,
    moving_mean_std,
    sliding_dot_products,
    znorm_centroid_distances,
)

__all__ = [
    "DEFAULT_MEMORY_BUDGET_MB", "memory_budget_bytes",
    "default_max_workers", "default_worker_mode",
    "padded_matmul_t", "tile_kneighbors",
    "PRECISIONS", "current_precision", "default_precision",
    "resolve_dtype", "set_default_precision", "use_precision",
    "matrix_profile", "moving_mean_std",
    "sliding_dot_products", "znorm_centroid_distances",
]
