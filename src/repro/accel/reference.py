"""Reference kernels: the pre-accel implementations, kept verbatim.

Every fast kernel in :mod:`repro.accel` ships with an equivalence oracle.
This module preserves the historical implementations exactly as they were
before the kernel layer existed, so tests and benchmarks can assert the
fast paths against the *old code* rather than against a re-derivation:

* :func:`matrix_profile_matmul` — the blocked all-pairs matmul profile
  (O(n²·w) flops, the original ``detectors.matrix_profile.matrix_profile``),
* :func:`kneighbors_dense` — full-distance-matrix k-NN (O(n²) memory, the
  original ``ml.neighbors.kneighbors``),
* :func:`pairwise_sq_euclidean_dense` — the original two-operand distance
  expansion.

They are also what small inputs still run through (see
:func:`repro.ml.neighbors.kneighbors`), so "reference" here means
*bit-for-bit historical behaviour*, not "slow test-only copy".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pairwise_sq_euclidean_dense(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances via the ``|a|² + |b|² - 2ab`` expansion."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_sq = (a ** 2).sum(axis=1)[:, None]
    b_sq = (b ** 2).sum(axis=1)[None, :]
    d = a_sq + b_sq - 2.0 * a @ b.T
    np.maximum(d, 0.0, out=d)
    return d


def kneighbors_dense(
    query: np.ndarray,
    reference: np.ndarray,
    k: int,
    exclude_self: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """k-NN over the fully materialised distance matrix (historical path)."""
    d = pairwise_sq_euclidean_dense(query, reference)
    if exclude_self:
        np.fill_diagonal(d, np.inf)
    k = min(k, d.shape[1] - (1 if exclude_self else 0))
    k = max(k, 1)
    idx = np.argpartition(d, kth=k - 1, axis=1)[:, :k]
    part = np.take_along_axis(d, idx, axis=1)
    order = np.argsort(part, axis=1)
    idx = np.take_along_axis(idx, order, axis=1)
    dist = np.sqrt(np.take_along_axis(part, order, axis=1))
    return dist, idx


def matrix_profile_matmul(
    series: np.ndarray,
    window: int,
    exclusion: int | None = None,
    chunk: int = 256,
) -> np.ndarray:
    """Self-join matrix profile via blocked all-pairs correlation (matmul).

    The original detector kernel: z-normalise every subsequence, then for
    each chunk of queries compute the full correlation row with one GEMM.
    O(n²·w) flops, O(chunk·n) scratch.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    if len(series) < window:
        return np.zeros(0)
    from ..detectors.base import sliding_windows  # deferred: detectors import accel

    subs = sliding_windows(series, window)
    n = subs.shape[0]
    exclusion = exclusion if exclusion is not None else max(1, window // 2)

    mean = subs.mean(axis=1, keepdims=True)
    std = subs.std(axis=1, keepdims=True)
    std = np.where(std < 1e-12, 1.0, std)
    z = (subs - mean) / std

    profile = np.full(n, np.inf)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        corr = z[start:stop] @ z.T / window  # (chunk, n), values in [-1, 1]
        d2 = 2.0 * window * (1.0 - corr)
        for row, query in enumerate(range(start, stop)):
            lo = max(0, query - exclusion)
            hi = min(n, query + exclusion + 1)
            d2[row, lo:hi] = np.inf
        profile[start:stop] = np.sqrt(np.maximum(d2.min(axis=1), 0.0))
    # A series shorter than ~2 windows may have every distance excluded.
    profile[~np.isfinite(profile)] = 0.0
    return profile
