"""KDSelector reproduction.

A knowledge-enhanced and data-efficient model-selector learning framework
for time series anomaly detection (Liang et al., SIGMOD-Companion 2025),
rebuilt from scratch on NumPy.

Sub-packages
------------
``repro.nn``
    NumPy autodiff neural-network substrate (replaces PyTorch).
``repro.ml``
    Classical machine-learning algorithms (replaces scikit-learn).
``repro.detectors``
    The 12 candidate TSAD models of the paper's model set.
``repro.data``
    Synthetic TSB-UAD-style benchmark: 16 dataset families, windowing,
    metadata and train/test splits.
``repro.text``
    Frozen text encoder standing in for BERT embeddings (MKI input).
``repro.selectors``
    The selector zoo: NN classifiers (ConvNet/ResNet/InceptionTime/
    Transformer) and non-NN baselines (feature-based and Rocket).
``repro.core``
    The KDSelector framework itself: PISL, MKI, PA, InfoBatch and the
    selector trainer.
``repro.eval``
    Anomaly-detection metrics (AUC-PR, AUC-ROC, ...) and selection
    evaluation (oracle labelling, majority voting).
``repro.system``
    End-to-end system: selector store, model-selection pipeline and
    anomaly-detection runner.
``repro.serving``
    Batched, cached selection serving: content-addressed LRU result cache,
    batched window extraction + forward passes, worker fan-out.
``repro.accel``
    Shared fast-kernel layer: diagonal/FFT matrix-profile kernels, tiled
    memory-budgeted distance kernels, the precision policy and runtime
    budgets that detectors, ``repro.ml`` and streaming route through.
``repro.streaming``
    Incremental selection + detection engine for live series: running
    votes, drift monitoring, online scoring.
``repro.service``
    Sharded multi-process service over the streaming engine: consistent-
    hash routing, shared-memory handoff, supervised recovery.
``repro.obs``
    Observability: metrics registry with Prometheus exposition, explicit-
    clock tracing, replayable selection audit trail, ``explain``.
"""

__version__ = "1.0.0"

from . import nn  # noqa: F401  (re-exported for convenience)

__all__ = ["nn", "__version__"]


def __getattr__(name):
    """Lazily import the heavier sub-packages on first attribute access.

    ``import repro`` stays cheap, while ``repro.core`` / ``repro.system``
    etc. remain available without explicit sub-imports.
    """
    import importlib

    if name in {"ml", "detectors", "data", "text", "selectors", "core", "eval", "system", "serving", "accel", "streaming", "service", "obs"}:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
