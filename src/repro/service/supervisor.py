"""Shard process lifecycle: spawn, health, kill, supervised restart.

The supervisor owns the operating-system side of the shard topology.  Each
shard is a **forked** child (the engine factory and its trained selector
are inherited copy-on-write — nothing is pickled to start a shard)
listening on a localhost TCP port the supervisor bound before forking, so
the port is known to the parent without any rendezvous protocol.

Recovery is deliberately blunt and deterministic: a shard that died (or
hangs past the request timeout) is SIGKILLed, a fresh process is forked on
a fresh port, and the *front end* replays the shard's streams from their
shared-memory buffers — the supervisor only manages processes, it holds no
stream state.  That split keeps every recovery path replayable in tests.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..streaming.engine import StreamEngine
from .shard import shard_main


@dataclass
class ShardHandle:
    """One live shard process and how to reach it."""

    shard_id: str
    process: "multiprocessing.process.BaseProcess"
    port: int
    #: times this shard id has been (re)spawned, 1 for the original
    generation: int = 1

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def is_alive(self) -> bool:
        return self.process.is_alive()


class ShardSupervisor:
    """Spawn and restart shard processes around an engine factory."""

    def __init__(self, engine_factory: Callable[[], StreamEngine],
                 host: str = "127.0.0.1") -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("the sharded service requires fork-capable "
                               "multiprocessing (Linux/macOS)")
        self.engine_factory = engine_factory
        self.host = host
        self._ctx = multiprocessing.get_context("fork")
        self.handles: Dict[str, ShardHandle] = {}
        #: total restarts across every shard (the recovery counter)
        self.restarts = 0

    # ------------------------------------------------------------------ #
    def spawn(self, shard_id: str) -> ShardHandle:
        """Fork one shard process; returns its handle (port already bound)."""
        if shard_id in self.handles:
            raise ValueError(f"shard {shard_id!r} is already running")
        handle = self._spawn(shard_id, generation=1)
        self.handles[shard_id] = handle
        return handle

    def _spawn(self, shard_id: str, generation: int) -> ShardHandle:
        listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listen_sock.bind((self.host, 0))
        listen_sock.listen(16)
        port = listen_sock.getsockname()[1]
        process = self._ctx.Process(
            target=shard_main,
            args=(shard_id, listen_sock, self.engine_factory),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        listen_sock.close()  # the child inherited it through fork
        return ShardHandle(shard_id=shard_id, process=process, port=port,
                           generation=generation)

    # ------------------------------------------------------------------ #
    def restart(self, shard_id: str) -> ShardHandle:
        """Kill (if needed) and respawn one shard on a fresh port."""
        old = self.handles.get(shard_id)
        if old is None:
            raise KeyError(f"unknown shard {shard_id!r}")
        self._terminate(old)
        handle = self._spawn(shard_id, generation=old.generation + 1)
        self.handles[shard_id] = handle
        self.restarts += 1
        return handle

    def kill(self, shard_id: str) -> int:
        """SIGKILL one shard (the chaos harness's crash primitive).

        Returns the killed pid.  The process is *not* respawned — detection
        and recovery are exercised through the normal request path.
        """
        handle = self.handles[shard_id]
        pid = handle.pid
        if pid is not None and handle.is_alive():
            os.kill(pid, signal.SIGKILL)
            handle.process.join(timeout=5.0)
        return pid or -1

    def forget(self, shard_id: str) -> None:
        """Terminate a shard and remove it from the topology (scale-down)."""
        handle = self.handles.pop(shard_id, None)
        if handle is not None:
            self._terminate(handle)

    def _terminate(self, handle: ShardHandle) -> None:
        if handle.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)
            if handle.is_alive():  # pragma: no cover - terminate is usually enough
                handle.process.kill()
                handle.process.join(timeout=2.0)
        else:
            handle.process.join(timeout=1.0)

    # ------------------------------------------------------------------ #
    def is_alive(self, shard_id: str) -> bool:
        handle = self.handles.get(shard_id)
        return handle is not None and handle.is_alive()

    @property
    def shard_ids(self) -> List[str]:
        return sorted(self.handles)

    def stop_all(self) -> None:
        for shard_id in list(self.handles):
            self.forget(shard_id)

    def __repr__(self) -> str:
        alive = sum(h.is_alive() for h in self.handles.values())
        return (f"ShardSupervisor(shards={len(self.handles)}, alive={alive}, "
                f"restarts={self.restarts})")
