"""Sharded streaming service: supervised shard processes behind one front end.

``repro.service`` scales :class:`repro.streaming.StreamEngine` past one
process: N forked shards each own a consistent-hash slice of the stream
population and run a full engine for it, while a lightweight front end
routes requests, hands series over through shared memory (zero-copy), and
replays streams onto restarted or rebalanced shards from its journal.
Selections and scores are bitwise-equal to the single-process engine.

Entry points: :class:`ShardedService` (in-process Python API),
:class:`ServiceFrontend` (asyncio TCP server; the ``serve-sharded`` CLI
command), and :class:`FaultInjector` (deterministic transport chaos for
the fault-injection suite under ``tests/chaos/``).
"""

from .frontend import ServiceConfig, ServiceFrontend, ShardedService, make_engine_factory
from .ring import HashRing
from .shard import ShardServer, shard_main
from .supervisor import ShardHandle, ShardSupervisor
from .transport import (
    FaultInjector,
    FaultPlan,
    FrameReader,
    SharedSegmentCache,
    SharedSeriesBuffer,
    ShardClient,
    ShardTimeoutError,
    TransportError,
    attach_shared_array,
    encode_message,
    recv_message,
    send_message,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FrameReader",
    "HashRing",
    "ServiceConfig",
    "ServiceFrontend",
    "ShardClient",
    "ShardHandle",
    "ShardServer",
    "ShardSupervisor",
    "ShardTimeoutError",
    "ShardedService",
    "SharedSegmentCache",
    "SharedSeriesBuffer",
    "TransportError",
    "attach_shared_array",
    "encode_message",
    "make_engine_factory",
    "recv_message",
    "send_message",
    "shard_main",
]
