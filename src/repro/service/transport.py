"""Wire protocol and shared-memory handoff of the sharded service.

Control messages are **length-prefixed JSON**: a 4-byte big-endian length
followed by a UTF-8 JSON object.  That covers requests, responses and
service metadata — everything *except* the series points themselves.

Points never travel through the socket.  The front end appends them into a
per-stream :class:`SharedSeriesBuffer` (``multiprocessing.shared_memory``)
and the control message carries only ``(segment name, length)``; the shard
attaches the segment and hands the engine a zero-copy NumPy view
(:meth:`repro.streaming.StreamEngine.append_view`).  This removes the
pickling/serialisation ceiling of the earlier process-pool fan-out: handoff
cost is independent of how many points a tick carries.

Reliability primitives live here too:

* every request carries a monotone ``seq``; :class:`ShardClient` retries on
  (injected) loss and discards stale responses, and the shard side answers
  duplicate ``seq`` values from a response cache instead of re-executing —
  so transport faults never double-apply an append;
* :class:`FaultInjector` deterministically (seeded) drops, duplicates or
  delays outgoing requests — the chaos harness's transport layer.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

_HEADER = struct.Struct(">I")

#: refuse absurd frames instead of trying to allocate them (corrupt header)
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


class TransportError(ConnectionError):
    """The peer vanished or sent garbage mid-conversation."""


class ShardTimeoutError(TimeoutError):
    """A shard did not answer within the request timeout (hung or dead)."""


# --------------------------------------------------------------------------- #
# length-prefixed JSON framing (blocking sockets)
# --------------------------------------------------------------------------- #
def encode_message(payload: Dict[str, object]) -> bytes:
    """One wire frame: 4-byte big-endian length + UTF-8 JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def send_message(sock: socket.socket, payload: Dict[str, object]) -> None:
    sock.sendall(encode_message(payload))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise TransportError(f"frame of {length} bytes exceeds the protocol limit")
    body = _recv_exact(sock, length)
    if body is None:
        raise TransportError("connection closed mid-frame")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"undecodable frame: {error}") from None
    if not isinstance(payload, dict):
        raise TransportError("protocol messages must be JSON objects")
    return payload


# --------------------------------------------------------------------------- #
# shared-memory series buffers (the zero-copy handoff)
# --------------------------------------------------------------------------- #
def attach_shared_array(name: str, length: int) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach a shared segment and view its first ``length`` float64 values.

    The returned :class:`SharedMemory` must be kept alive as long as the
    view is used.  Tracker registration is suppressed during the attach:
    forked shards share the parent's resource-tracker process, so a reader
    must neither register a segment it merely maps (the tracker would
    unlink it on reader exit) nor unregister it afterwards (that would
    erase the *owner's* registration in the shared tracker).  Python 3.13's
    ``track=False`` does the same; this works on 3.11.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register
    view = np.ndarray((length,), dtype=np.float64, buffer=shm.buf)
    view.flags.writeable = False
    return shm, view


class SharedSeriesBuffer:
    """A growing float64 series stored in shared memory (front-end owned).

    Appends are amortised O(1): when the segment fills up, a segment of
    twice the size is created, the prefix copied once, and the old segment
    unlinked (readers that still map it keep a valid view until they
    re-attach — POSIX keeps unlinked segments alive while mapped).  Readers
    locate the current segment by :attr:`name` and the valid prefix by
    :attr:`length`; both travel in control messages.
    """

    def __init__(self, stream_id: str, initial_capacity: int = 2048) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self.stream_id = stream_id
        self._capacity = int(initial_capacity)
        self._length = 0
        self._shm = shared_memory.SharedMemory(create=True, size=self._capacity * 8)
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Name of the current shared segment (changes when the buffer grows)."""
        return self._shm.name

    @property
    def length(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    @property
    def series(self) -> np.ndarray:
        """Read-only view of the points stored so far (no copy)."""
        view = np.ndarray((self._length,), dtype=np.float64, buffer=self._shm.buf)
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------ #
    def append(self, values: np.ndarray) -> Tuple[int, int]:
        """Append points; returns the ``(start, end)`` slice they occupy."""
        if self._closed:
            raise ValueError("buffer is closed")
        values = np.asarray(values, dtype=np.float64).ravel()
        start = self._length
        needed = start + len(values)
        if needed > self._capacity:
            capacity = self._capacity
            while capacity < needed:
                capacity *= 2
            grown = shared_memory.SharedMemory(create=True, size=capacity * 8)
            np.ndarray((start,), dtype=np.float64, buffer=grown.buf)[:] = \
                np.ndarray((start,), dtype=np.float64, buffer=self._shm.buf)
            self._shm.close()
            self._shm.unlink()
            self._shm = grown
            self._capacity = capacity
        np.ndarray((needed,), dtype=np.float64, buffer=self._shm.buf)[start:] = values
        self._length = needed
        return start, needed

    def close(self) -> None:
        """Release and unlink the segment (the owner's teardown)."""
        if not self._closed:
            self._closed = True
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


class SharedSegmentCache:
    """Shard-side registry of attached segments, one per stream.

    Re-attaches when a stream's segment name changes (the front end grew
    the buffer) and detaches on :meth:`drop` when a stream moves away.
    """

    def __init__(self) -> None:
        self._attached: Dict[str, Tuple[str, shared_memory.SharedMemory]] = {}

    def view(self, stream_id: str, name: str, length: int) -> np.ndarray:
        """Zero-copy float64 view of one stream's first ``length`` points."""
        cached = self._attached.get(stream_id)
        if cached is not None and cached[0] == name:
            shm = cached[1]
            view = np.ndarray((length,), dtype=np.float64, buffer=shm.buf)
            view.flags.writeable = False
            return view
        shm, view = attach_shared_array(name, length)
        if cached is not None:
            cached[1].close()
        self._attached[stream_id] = (name, shm)
        return view

    def drop(self, stream_id: str) -> None:
        cached = self._attached.pop(stream_id, None)
        if cached is not None:
            cached[1].close()

    def close(self) -> None:
        for stream_id in list(self._attached):
            self.drop(stream_id)


class FrameReader:
    """Buffered frame reader for sockets read under a timeout.

    A timeout may strike after part of a frame arrived; the partial bytes
    stay in the buffer so the next read resumes cleanly — the framing never
    desynchronises, which is what lets :class:`ShardClient` retransmit
    after an injected drop without corrupting the conversation.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()

    def read_frame(self, timeout_s: float) -> Optional[Dict[str, object]]:
        """One message within ``timeout_s``; None on clean EOF."""
        deadline = time.monotonic() + timeout_s
        while True:
            frame = self._extract()
            if frame is not None:
                return frame
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("no complete frame within the timeout")
            self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(1 << 16)
            except (socket.timeout, TimeoutError):
                raise TimeoutError("no complete frame within the timeout") from None
            if not chunk:
                if self._buf:
                    raise TransportError("connection closed mid-frame")
                return None
            self._buf += chunk

    def _extract(self) -> Optional[Dict[str, object]]:
        if len(self._buf) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack(bytes(self._buf[:_HEADER.size]))
        if length > MAX_MESSAGE_BYTES:
            raise TransportError(f"frame of {length} bytes exceeds the protocol limit")
        end = _HEADER.size + length
        if len(self._buf) < end:
            return None
        body = bytes(self._buf[_HEADER.size:end])
        del self._buf[:end]
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TransportError(f"undecodable frame: {error}") from None
        if not isinstance(payload, dict):
            raise TransportError("protocol messages must be JSON objects")
        return payload


# --------------------------------------------------------------------------- #
# deterministic transport fault injection
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultPlan:
    """Per-request fault decision (what the injector chose to do)."""

    drop: bool = False
    duplicate: bool = False
    delay_s: float = 0.0


class FaultInjector:
    """Seeded drop/duplicate/delay decisions for outgoing requests.

    Deterministic: the same seed produces the same fault sequence, so a
    failing chaos run replays exactly.  Probabilities are per *send
    attempt* — a dropped request's retry rolls again.
    """

    def __init__(self, seed: int, drop: float = 0.0, duplicate: float = 0.0,
                 delay: float = 0.0, max_delay_s: float = 0.02) -> None:
        for name, p in (("drop", drop), ("duplicate", duplicate), ("delay", delay)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        self._rng = random.Random(seed)
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.max_delay_s = max_delay_s
        #: counters for assertions ("faults actually happened")
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def plan(self) -> FaultPlan:
        """Roll the dice for one send attempt."""
        drop = self._rng.random() < self.drop
        duplicate = (not drop) and self._rng.random() < self.duplicate
        delay_s = self._rng.random() * self.max_delay_s \
            if self._rng.random() < self.delay else 0.0
        self.dropped += drop
        self.duplicated += duplicate
        self.delayed += delay_s > 0.0
        return FaultPlan(drop=drop, duplicate=duplicate, delay_s=delay_s)


# --------------------------------------------------------------------------- #
# the front end's per-shard request channel
# --------------------------------------------------------------------------- #
class ShardClient:
    """One persistent request/response connection to one shard.

    Requests are sequence-numbered.  A send the injector drops is simply
    not written; the reply wait then times out quickly and the request is
    retransmitted with the *same* ``seq`` — the shard deduplicates, so the
    retry is exactly-once.  Responses are matched by ``seq`` and stale or
    duplicated replies are discarded.
    """

    #: reply wait after an *injected* drop before retransmitting
    RETRY_WAIT_S = 0.05

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout_s: float = 10.0,
                 injector: Optional[FaultInjector] = None) -> None:
        from ..obs.metrics import default_registry  # deferred: keep transport import-light

        self.timeout_s = timeout_s
        self.injector = injector
        self._seq = 0
        #: same-seq retransmissions after an injected drop (transport retries)
        self.retransmits = 0
        self._c_retransmits = default_registry().counter(
            "repro_transport_retransmits_total",
            "same-seq retransmissions after a dropped request frame")
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = FrameReader(self._sock)

    # ------------------------------------------------------------------ #
    def request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one request and wait for its matching response."""
        self._seq += 1
        payload = {"op": op, "seq": self._seq, **fields}
        frame = encode_message(payload)
        deadline = time.monotonic() + self.timeout_s
        dropped = self._send(frame)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardTimeoutError(
                    f"shard did not answer {op!r} (seq {self._seq}) "
                    f"within {self.timeout_s:.1f}s")
            # After an injected drop nothing is in flight: wait only a short
            # beat, then retransmit the same seq (the shard deduplicates).
            wait = min(remaining, self.RETRY_WAIT_S) if dropped else remaining
            try:
                response = self._reader.read_frame(wait)
            except ShardTimeoutError:
                raise
            except TimeoutError:
                if dropped:
                    self.retransmits += 1
                    self._c_retransmits.inc()
                    dropped = self._send(frame)
                    continue
                raise ShardTimeoutError(
                    f"shard did not answer {op!r} (seq {self._seq}) "
                    f"within {self.timeout_s:.1f}s") from None
            if response is None:
                raise TransportError("shard closed the connection")
            if response.get("seq") != self._seq:
                continue  # stale reply from a duplicated earlier request
            if response.get("error"):
                raise RuntimeError(f"shard error on {op!r}: {response['error']}")
            return response

    def _send(self, frame: bytes) -> bool:
        """Write the frame (subject to fault injection); True when dropped."""
        plan = self.injector.plan() if self.injector is not None else FaultPlan()
        if plan.delay_s:
            time.sleep(plan.delay_s)
        if plan.drop:
            return True
        self._sock.sendall(frame)
        if plan.duplicate:
            self._sock.sendall(frame)
        return False

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
