"""The service front end: routing, recovery orchestration, TCP serving.

:class:`ShardedService` is the authoritative router.  It owns

* the :class:`HashRing` mapping stream ids to shards,
* the per-stream :class:`SharedSeriesBuffer` (the zero-copy handoff *and*
  the durable record recovery replays from),
* the per-stream **journal** of flush boundaries (which prefixes were
  flushed together — the information that makes replay bitwise-exact),
* a front-end selection LRU, refreshed by push responses and backed by the
  per-shard ``select`` memo, with **broadcast invalidation** to every shard
  whenever a drift re-selection changes a stream's answer, and
* the :class:`ShardSupervisor` and one :class:`ShardClient` per shard.

Failure handling is centralised in :meth:`ShardedService._request`: any
transport error or request timeout triggers supervised recovery — SIGKILL
+ respawn via the supervisor, then a ``replay`` of every stream the ring
assigns to that shard — and the original request is retried once.  Because
the journal is committed only after a shard acknowledged a flush, the
retry is exactly-once: a shard that died before acknowledging is replayed
to its pre-tick state and the tick is re-applied.

:class:`ServiceFrontend` wraps the router in a stdlib-``asyncio`` TCP
server speaking the same length-prefixed JSON protocol, which is what the
``serve-sharded`` CLI command runs.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..detectors.base import AnomalyDetector
from ..selectors.base import Selector
from ..serving.cache import LRUCache
from ..streaming.engine import StreamEngine, StreamingConfig
from .ring import HashRing
from .supervisor import ShardSupervisor
from .transport import (
    FaultInjector,
    SharedSeriesBuffer,
    ShardClient,
    ShardTimeoutError,
    TransportError,
    encode_message,
)


def make_engine_factory(
    selector: Selector,
    detector_names: Sequence[str],
    config: Optional[StreamingConfig] = None,
    model_set: Optional[Dict[str, AnomalyDetector]] = None,
) -> Callable[[], StreamEngine]:
    """A picklable-free engine builder for forked shards.

    The closure (selector weights included) reaches the shard through fork
    inheritance — engine construction happens inside the child, so shards
    never share mutable engine state with the parent or each other.
    """
    def build() -> StreamEngine:
        return StreamEngine(selector, detector_names, config, model_set=model_set)
    return build


@dataclass(frozen=True)
class ServiceConfig:
    """Topology and routing knobs of the sharded service."""

    #: number of shard processes to start with
    n_shards: int = 2
    #: virtual nodes per shard on the consistent-hash ring
    ring_replicas: int = 128
    #: per-request timeout before a shard is declared hung and restarted
    request_timeout_s: float = 10.0
    #: front-end selection LRU entries (0 disables)
    selection_cache_capacity: int = 4096
    #: initial shared-memory capacity per stream, in points
    initial_stream_capacity: int = 2048


class ShardedService:
    """Route stream traffic across supervised shard processes."""

    def __init__(
        self,
        engine_factory: Callable[[], StreamEngine],
        config: Optional[ServiceConfig] = None,
        injector_factory: Optional[Callable[[str], Optional[FaultInjector]]] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self._injector_factory = injector_factory or (lambda shard_id: None)
        self.supervisor = ShardSupervisor(engine_factory)
        self.ring = HashRing(replicas=self.config.ring_replicas)
        self._clients: Dict[str, ShardClient] = {}
        self._buffers: Dict[str, SharedSeriesBuffer] = {}
        #: per-stream flushed-prefix lengths, in flush order (the journal)
        self._journal: Dict[str, List[int]] = {}
        self._staged: set = set()
        self._selection_cache = (LRUCache(self.config.selection_cache_capacity)
                                 if self.config.selection_cache_capacity > 0 else None)
        self._next_shard_index = 0
        self._closed = False
        #: counters surfaced in :meth:`stats`
        self.recoveries = 0
        self.invalidations_broadcast = 0
        for _ in range(self.config.n_shards):
            self.add_shard(rebalance=False)

    # ------------------------------------------------------------------ #
    # shard management
    # ------------------------------------------------------------------ #
    @property
    def shard_ids(self) -> List[str]:
        return self.ring.shard_ids

    def shard_pid(self, shard_id: str) -> Optional[int]:
        """The shard's current pid (the chaos harness's kill target)."""
        return self.supervisor.handles[shard_id].pid

    def _connect(self, shard_id: str) -> ShardClient:
        handle = self.supervisor.handles[shard_id]
        client = ShardClient(handle.port,
                             timeout_s=self.config.request_timeout_s,
                             injector=self._injector_factory(shard_id))
        self._clients[shard_id] = client
        return client

    def add_shard(self, shard_id: Optional[str] = None, rebalance: bool = True) -> str:
        """Grow the topology by one shard; owned streams move to it.

        The hash ring guarantees only ~K/N streams move; each moved stream
        is replayed on the new shard from its shared buffer and dropped
        from its previous owner (deterministic rebalance).
        """
        if shard_id is None:
            shard_id = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        previous_owner = {stream: self.ring.owner(stream) for stream in self._buffers} \
            if len(self.ring) else {}
        self.supervisor.spawn(shard_id)
        self._connect(shard_id)
        self.ring.add(shard_id)
        if rebalance and previous_owner:
            moved = [stream for stream in self._buffers
                     if self.ring.owner(stream) == shard_id]
            self._replay_streams(shard_id, moved)
            by_old_owner: Dict[str, List[str]] = {}
            for stream in moved:
                by_old_owner.setdefault(previous_owner[stream], []).append(stream)
            for old_owner, streams in sorted(by_old_owner.items()):
                self._request(old_owner, "drop_streams", streams=streams)
        return shard_id

    def remove_shard(self, shard_id: str) -> None:
        """Shrink the topology; the shard's streams move to their new owners."""
        if len(self.ring) <= 1:
            raise ValueError("cannot remove the last shard")
        moved = [stream for stream in self._buffers
                 if self.ring.owner(stream) == shard_id]
        self.ring.remove(shard_id)
        new_owners: Dict[str, List[str]] = {}
        for stream in moved:
            new_owners.setdefault(self.ring.owner(stream), []).append(stream)
        for new_owner, streams in sorted(new_owners.items()):
            self._replay_streams(new_owner, streams)
        client = self._clients.pop(shard_id, None)
        if client is not None:
            try:
                client.request("shutdown")
            except (RuntimeError, OSError):  # pragma: no cover - best effort
                pass
            client.close()
        self.supervisor.forget(shard_id)

    # ------------------------------------------------------------------ #
    # request path with supervised recovery
    # ------------------------------------------------------------------ #
    def _request(self, shard_id: str, op: str, **fields: object) -> Dict[str, object]:
        """One shard request; on failure, recover the shard and retry once."""
        for attempt in (1, 2):
            client = self._clients.get(shard_id) or self._connect(shard_id)
            try:
                return client.request(op, **fields)
            except (ShardTimeoutError, TransportError, ConnectionError, OSError):
                if attempt == 2:
                    raise
                self._recover(shard_id)
        raise AssertionError("unreachable")  # pragma: no cover

    def _recover(self, shard_id: str) -> None:
        """Supervised recovery: kill + respawn + replay the shard's streams."""
        self.recoveries += 1
        client = self._clients.pop(shard_id, None)
        if client is not None:
            client.close()
        self.supervisor.restart(shard_id)
        self._connect(shard_id)
        owned = [stream for stream in self._buffers
                 if self.ring.owner(stream) == shard_id]
        self._replay_streams(shard_id, owned)

    def _replay_streams(self, shard_id: str, streams: Sequence[str]) -> None:
        flushed = [s for s in sorted(streams) if self._journal.get(s)]
        if not flushed:
            return
        payload = [{
            "stream": stream,
            "shm": self._buffers[stream].name,
            "length": self._buffers[stream].length,
            "boundaries": self._journal[stream],
        } for stream in flushed]
        # Replay goes through the raw client on purpose: a shard that dies
        # *during* recovery surfaces as a failure of the original request's
        # retry instead of recursing here.
        client = self._clients.get(shard_id) or self._connect(shard_id)
        client.request("replay", streams=payload)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def append(self, stream_id: str, values: np.ndarray) -> None:
        """Stage points on one stream (shared memory; flushed by :meth:`flush`)."""
        if self._closed:
            raise ValueError("service is closed")
        values = np.asarray(values, dtype=np.float64).ravel()
        buffer = self._buffers.get(stream_id)
        if buffer is None:
            buffer = SharedSeriesBuffer(
                stream_id, initial_capacity=max(
                    self.config.initial_stream_capacity, len(values)))
            self._buffers[stream_id] = buffer
            self._journal[stream_id] = []
        buffer.append(values)
        self._staged.add(stream_id)

    def push(self, stream_id: str, values: np.ndarray) -> Dict[str, object]:
        """Append to one stream and flush immediately (single-stream ticks)."""
        self.append(stream_id, values)
        return self.flush()[stream_id]

    def flush(self) -> Dict[str, Dict[str, object]]:
        """Process every staged append: one ``push_batch`` per owning shard.

        The per-shard requests go out **concurrently** (threads; the GIL is
        released while waiting on sockets), so shard processes compute their
        batches in parallel — this is where the multi-shard throughput win
        comes from.  Results are merged and journalled in deterministic
        shard order afterwards.
        """
        if not self._staged:
            return {}
        staged = sorted(self._staged)
        updates: Dict[str, Dict[str, object]] = {}
        by_shard = self.ring.assign(staged)
        shard_order = sorted(by_shard)

        def push_one(shard_id: str) -> Dict[str, object]:
            ticks = [{"stream": stream,
                      "shm": self._buffers[stream].name,
                      "length": self._buffers[stream].length}
                     for stream in by_shard[shard_id]]
            return self._request(shard_id, "push_batch", ticks=ticks)

        if len(shard_order) == 1:
            responses = {shard_order[0]: push_one(shard_order[0])}
        else:
            with ThreadPoolExecutor(max_workers=len(shard_order)) as pool:
                responses = dict(zip(shard_order, pool.map(push_one, shard_order)))
        for shard_id in shard_order:
            # Journal only after the shard acknowledged: recovery replays to
            # the pre-tick state and the retry re-applies the tick.
            for stream in by_shard[shard_id]:
                self._journal[stream].append(self._buffers[stream].length)
                self._staged.discard(stream)
            updates.update(responses[shard_id]["updates"])

        drifted = sorted(stream for stream, update in updates.items()
                         if update.get("drift_triggered"))
        if self._selection_cache is not None:
            for stream, update in updates.items():
                self._selection_cache.put(stream, {
                    "stream": stream,
                    "selected_index": update["selected_index"],
                    "selected_model": update["selected_model"],
                    "votes": update["votes"],
                    "n_windows": update["windows"],
                    "provisional": update["provisional"],
                })
        if drifted:
            self._broadcast_invalidate(drifted)
        return updates

    def _broadcast_invalidate(self, streams: List[str]) -> None:
        """Drift re-selection changed answers: clear every shard's memo."""
        self.invalidations_broadcast += 1
        for shard_id in self.shard_ids:
            self._request(shard_id, "invalidate", streams=streams)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def select(self, stream_id: str) -> Optional[Dict[str, object]]:
        """The stream's current selection (front-end LRU, then its shard)."""
        if self._selection_cache is not None and stream_id not in self._staged:
            hit = self._selection_cache.get(stream_id)
            if hit is not None:
                return {**hit, "cached": True}
        response = self._request(self.ring.owner(stream_id), "select",
                                 stream=stream_id)
        selection = response.get("selection")
        if selection is not None and self._selection_cache is not None \
                and stream_id not in self._staged:
            self._selection_cache.put(stream_id, dict(selection))
        return selection

    def scores(self, stream_id: str) -> np.ndarray:
        """Per-point anomaly scores of one stream's scored prefix."""
        response = self._request(self.ring.owner(stream_id), "scores",
                                 stream=stream_id)
        return np.asarray(response["scores"], dtype=np.float64)

    def series(self, stream_id: str) -> np.ndarray:
        """Every point received on one stream (front-end shared memory)."""
        return self._buffers[stream_id].series

    @property
    def stream_ids(self) -> List[str]:
        return sorted(self._buffers)

    def stats(self) -> Dict[str, object]:
        """Aggregate counters across shards plus service-level counters."""
        per_shard: Dict[str, Dict[str, object]] = {}
        for shard_id in self.shard_ids:
            per_shard[shard_id] = self._request(shard_id, "stats")
        totals: Dict[str, int] = {}
        for response in per_shard.values():
            for key, value in response["stats"].items():
                totals[key] = totals.get(key, 0) + int(value)
        cache_stats = self._selection_cache.stats if self._selection_cache else None
        return {
            "shards": len(self.shard_ids),
            "streams": len(self._buffers),
            "totals": totals,
            "per_shard": {sid: resp["stats"] for sid, resp in per_shard.items()},
            "ring": self.ring.to_state(),
            "restarts": self.supervisor.restarts,
            "recoveries": self.recoveries,
            "invalidations_broadcast": self.invalidations_broadcast,
            "selection_cache": ({
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "size": cache_stats.size,
            } if cache_stats is not None else None),
        }

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop every shard and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for shard_id, client in list(self._clients.items()):
            try:
                client.request("shutdown")
            except (RuntimeError, OSError, ConnectionError, TimeoutError):
                pass  # a dead shard cannot acknowledge its shutdown
            client.close()
        self._clients.clear()
        self.supervisor.stop_all()
        for buffer in self._buffers.values():
            buffer.close()
        self._buffers.clear()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedService(shards={len(self.shard_ids)}, "
                f"streams={len(self._buffers)}, "
                f"restarts={self.supervisor.restarts})")


# --------------------------------------------------------------------------- #
# the asyncio TCP front end (what `serve-sharded` runs)
# --------------------------------------------------------------------------- #
class ServiceFrontend:
    """Serve :class:`ShardedService` over TCP (length-prefixed JSON).

    Client ops mirror the Python API: ``push`` (stream + values), ``append``
    + ``flush``, ``select``, ``scores``, ``stats``, ``ping``.  Values arrive
    as JSON arrays from remote clients; the zero-copy handoff applies on the
    front-end → shard hop.  Service calls are serialised by a lock and run
    in a worker thread so one slow shard request does not stall the accept
    loop.
    """

    def __init__(self, service: ShardedService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._lock = threading.Lock()

    async def start(self) -> int:
        """Bind and start accepting; returns the actual port."""
        self._server = await asyncio.start_server(self._handle_client,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = int.from_bytes(header, "big")
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                request: object = None
                try:
                    request = json.loads(body.decode("utf-8"))
                    response = await asyncio.get_running_loop().run_in_executor(
                        None, self._execute, request)
                except Exception as error:
                    response = {"error": f"{type(error).__name__}: {error}"}
                if isinstance(request, dict) and "seq" in request:
                    response["seq"] = request["seq"]
                writer.write(encode_message(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer already gone
                pass

    def _execute(self, request: Dict[str, object]) -> Dict[str, object]:
        if not isinstance(request, dict):
            raise ValueError("requests must be JSON objects")
        op = request.get("op")
        with self._lock:
            if op == "ping":
                return {"ok": True, "shards": len(self.service.shard_ids)}
            if op == "push":
                update = self.service.push(str(request["stream"]),
                                           np.asarray(request["values"], dtype=np.float64))
                return {"update": update}
            if op == "append":
                self.service.append(str(request["stream"]),
                                    np.asarray(request["values"], dtype=np.float64))
                return {"ok": True}
            if op == "flush":
                return {"updates": self.service.flush()}
            if op == "select":
                return {"selection": self.service.select(str(request["stream"]))}
            if op == "scores":
                return {"scores": [float(s)
                                   for s in self.service.scores(str(request["stream"]))]}
            if op == "stats":
                return {"stats": self.service.stats()}
            raise ValueError(f"unknown op {op!r}")
