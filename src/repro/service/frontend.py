"""The service front end: routing, recovery orchestration, TCP serving.

:class:`ShardedService` is the authoritative router.  It owns

* the :class:`HashRing` mapping stream ids to shards,
* the per-stream :class:`SharedSeriesBuffer` (the zero-copy handoff *and*
  the durable record recovery replays from),
* the per-stream **journal** of flush boundaries (which prefixes were
  flushed together — the information that makes replay bitwise-exact),
* a front-end selection LRU, refreshed by push responses and backed by the
  per-shard ``select`` memo, with **broadcast invalidation** to every shard
  whenever a drift re-selection changes a stream's answer, and
* the :class:`ShardSupervisor` and one :class:`ShardClient` per shard.

Failure handling is centralised in :meth:`ShardedService._request`: any
transport error or request timeout triggers supervised recovery — SIGKILL
+ respawn via the supervisor, then a ``replay`` of every stream the ring
assigns to that shard — and the original request is retried once.  Because
the journal is committed only after a shard acknowledged a flush, the
retry is exactly-once: a shard that died before acknowledging is replayed
to its pre-tick state and the tick is re-applied.

:class:`ServiceFrontend` wraps the router in a stdlib-``asyncio`` TCP
server speaking the same length-prefixed JSON protocol, which is what the
``serve-sharded`` CLI command runs.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.windows import complete_window_count
from ..detectors.base import AnomalyDetector
from ..obs.audit import NULL_AUDIT, selection_inputs
from ..obs.metrics import DEFAULT_COUNT_BUCKETS, Counter, default_registry
from ..obs.trace import span
from ..selectors.base import Selector
from ..serving.cache import LRUCache
from ..streaming.engine import StreamEngine, StreamingConfig
from .ring import HashRing
from .supervisor import ShardSupervisor
from .transport import (
    FaultInjector,
    SharedSeriesBuffer,
    ShardClient,
    ShardTimeoutError,
    TransportError,
    encode_message,
)


def make_engine_factory(
    selector: Selector,
    detector_names: Sequence[str],
    config: Optional[StreamingConfig] = None,
    model_set: Optional[Dict[str, AnomalyDetector]] = None,
    teacher: Optional[Selector] = None,
    student: Optional[Selector] = None,
    refresh_config: Optional[object] = None,
    cascade: Optional[object] = None,
) -> Callable[[], StreamEngine]:
    """A picklable-free engine builder for forked shards.

    The closure (selector weights included) reaches the shard through fork
    inheritance — engine construction happens inside the child, so shards
    never share mutable engine state with the parent or each other.

    When ``teacher`` is given, each shard also gets its own
    :class:`repro.distill.StudentRefresher` so drift triggers probe
    student↔teacher agreement and fine-tune locally.  ``student`` names the
    trainable float student; it defaults to ``selector`` itself and must be
    passed explicitly when ``selector`` is the int8 tier (the int8 twin is
    then re-quantized in place after each escalation).

    ``cascade`` (a :class:`repro.cascade.CascadeRouter`) reaches each shard
    the same way — through fork inheritance — so every shard routes with
    the identical threshold, seed and cost model.  Escalation decisions are
    per window row and content-local, which keeps routing (and therefore
    selections) bitwise identical across any shard count.
    """
    def build() -> StreamEngine:
        refresher = None
        if teacher is not None:
            from ..distill import Int8StudentSelector, StudentRefresher  # deferred: optional tier

            trainable = student if student is not None else selector
            quantized = selector if isinstance(selector, Int8StudentSelector) else None
            refresher = StudentRefresher(teacher, trainable, refresh_config,
                                         quantized=quantized)
        return StreamEngine(selector, detector_names, config, model_set=model_set,
                            refresher=refresher, cascade=cascade)
    # advertised so the router can stamp replayable windowing inputs onto
    # its audit events without asking a shard
    build.streaming_config = config or StreamingConfig()
    build.detector_names = list(detector_names)
    return build


@dataclass(frozen=True)
class ServiceConfig:
    """Topology and routing knobs of the sharded service."""

    #: number of shard processes to start with
    n_shards: int = 2
    #: virtual nodes per shard on the consistent-hash ring
    ring_replicas: int = 128
    #: per-request timeout before a shard is declared hung and restarted
    request_timeout_s: float = 10.0
    #: front-end selection LRU entries (0 disables)
    selection_cache_capacity: int = 4096
    #: initial shared-memory capacity per stream, in points
    initial_stream_capacity: int = 2048


class ShardedService:
    """Route stream traffic across supervised shard processes."""

    def __init__(
        self,
        engine_factory: Callable[[], StreamEngine],
        config: Optional[ServiceConfig] = None,
        injector_factory: Optional[Callable[[str], Optional[FaultInjector]]] = None,
        audit: Optional[object] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self._injector_factory = injector_factory or (lambda shard_id: None)
        self.supervisor = ShardSupervisor(engine_factory)
        self.ring = HashRing(replicas=self.config.ring_replicas)
        self._clients: Dict[str, ShardClient] = {}
        self._buffers: Dict[str, SharedSeriesBuffer] = {}
        #: per-stream flushed-prefix lengths, in flush order (the journal)
        self._journal: Dict[str, List[int]] = {}
        self._staged: set = set()
        self._selection_cache = (LRUCache(self.config.selection_cache_capacity,
                                          name="frontend_selection")
                                 if self.config.selection_cache_capacity > 0 else None)
        self._next_shard_index = 0
        self._closed = False
        #: structured audit trail (``repro.obs.audit``); a no-op by default
        self.audit = audit if audit is not None else NULL_AUDIT
        #: windowing knobs advertised by :func:`make_engine_factory`, used to
        #: stamp replayable inputs onto audited selections (None when the
        #: factory came from elsewhere)
        self._streaming_config: Optional[StreamingConfig] = getattr(
            engine_factory, "streaming_config", None)
        #: counters surfaced in :meth:`stats`
        self.recoveries = 0
        self.invalidations_broadcast = 0
        self._retired_retransmits = 0
        registry = default_registry()
        self._registry = registry
        self._c_recoveries = registry.register(Counter(
            "repro_service_recoveries_total",
            "supervised shard recoveries (kill + respawn + replay)"))
        self._c_invalidations = registry.register(Counter(
            "repro_service_invalidations_total",
            "broadcast selection-memo invalidations after drift"))
        self._h_replay_depth = registry.histogram(
            "repro_service_replay_boundaries",
            "journalled flush boundaries replayed per recovered stream",
            buckets=DEFAULT_COUNT_BUCKETS)
        self._latency_hist: Dict[str, object] = {}
        for _ in range(self.config.n_shards):
            self.add_shard(rebalance=False)

    # ------------------------------------------------------------------ #
    # shard management
    # ------------------------------------------------------------------ #
    @property
    def shard_ids(self) -> List[str]:
        return self.ring.shard_ids

    def shard_pid(self, shard_id: str) -> Optional[int]:
        """The shard's current pid (the chaos harness's kill target)."""
        return self.supervisor.handles[shard_id].pid

    def _connect(self, shard_id: str) -> ShardClient:
        handle = self.supervisor.handles[shard_id]
        client = ShardClient(handle.port,
                             timeout_s=self.config.request_timeout_s,
                             injector=self._injector_factory(shard_id))
        self._clients[shard_id] = client
        return client

    def add_shard(self, shard_id: Optional[str] = None, rebalance: bool = True) -> str:
        """Grow the topology by one shard; owned streams move to it.

        The hash ring guarantees only ~K/N streams move; each moved stream
        is replayed on the new shard from its shared buffer and dropped
        from its previous owner (deterministic rebalance).
        """
        if shard_id is None:
            shard_id = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        previous_owner = {stream: self.ring.owner(stream) for stream in self._buffers} \
            if len(self.ring) else {}
        self.supervisor.spawn(shard_id)
        self._connect(shard_id)
        self.ring.add(shard_id)
        if rebalance and previous_owner:
            moved = [stream for stream in self._buffers
                     if self.ring.owner(stream) == shard_id]
            self._replay_streams(shard_id, moved)
            by_old_owner: Dict[str, List[str]] = {}
            for stream in moved:
                by_old_owner.setdefault(previous_owner[stream], []).append(stream)
            for old_owner, streams in sorted(by_old_owner.items()):
                self._request(old_owner, "drop_streams", streams=streams)
        return shard_id

    def remove_shard(self, shard_id: str) -> None:
        """Shrink the topology; the shard's streams move to their new owners."""
        if len(self.ring) <= 1:
            raise ValueError("cannot remove the last shard")
        moved = [stream for stream in self._buffers
                 if self.ring.owner(stream) == shard_id]
        self.ring.remove(shard_id)
        new_owners: Dict[str, List[str]] = {}
        for stream in moved:
            new_owners.setdefault(self.ring.owner(stream), []).append(stream)
        for new_owner, streams in sorted(new_owners.items()):
            self._replay_streams(new_owner, streams)
        client = self._clients.get(shard_id)
        if client is not None:
            try:
                client.request("shutdown")
            except (RuntimeError, OSError):  # pragma: no cover - best effort
                pass
        self._retire_client(shard_id)
        self.supervisor.forget(shard_id)

    # ------------------------------------------------------------------ #
    # request path with supervised recovery
    # ------------------------------------------------------------------ #
    def _shard_latency(self, shard_id: str):
        histogram = self._latency_hist.get(shard_id)
        if histogram is None:
            histogram = self._registry.histogram(
                "repro_service_request_seconds",
                "front-end request latency per shard", shard=shard_id)
            self._latency_hist[shard_id] = histogram
        return histogram

    def _request(self, shard_id: str, op: str, **fields: object) -> Dict[str, object]:
        """One shard request; on failure, recover the shard and retry once."""
        for attempt in (1, 2):
            client = self._clients.get(shard_id) or self._connect(shard_id)
            try:
                with self._shard_latency(shard_id).time(), \
                        span("service.request", shard=shard_id, op=op):
                    return client.request(op, **fields)
            except (ShardTimeoutError, TransportError, ConnectionError, OSError):
                if attempt == 2:
                    raise
                self._recover(shard_id)
        raise AssertionError("unreachable")  # pragma: no cover

    def _retire_client(self, shard_id: str) -> None:
        """Close a shard's client, folding its retransmit count into stats."""
        client = self._clients.pop(shard_id, None)
        if client is not None:
            self._retired_retransmits += client.retransmits
            client.close()

    def _recover(self, shard_id: str) -> None:
        """Supervised recovery: kill + respawn + replay the shard's streams."""
        self.recoveries += 1
        self._c_recoveries.inc()
        self._retire_client(shard_id)
        self.supervisor.restart(shard_id)
        self._connect(shard_id)
        owned = [stream for stream in self._buffers
                 if self.ring.owner(stream) == shard_id]
        if self.audit.enabled:
            self.audit.record(
                "shard_restart", shard=shard_id,
                streams=len(owned),
                replay_depth=sum(len(self._journal.get(s) or ()) for s in owned))
        self._replay_streams(shard_id, owned)

    def _replay_streams(self, shard_id: str, streams: Sequence[str]) -> None:
        flushed = [s for s in sorted(streams) if self._journal.get(s)]
        if not flushed:
            return
        for stream in flushed:
            self._h_replay_depth.observe(len(self._journal[stream]))
        payload = [{
            "stream": stream,
            "shm": self._buffers[stream].name,
            "length": self._buffers[stream].length,
            "boundaries": self._journal[stream],
        } for stream in flushed]
        # Replay goes through the raw client on purpose: a shard that dies
        # *during* recovery surfaces as a failure of the original request's
        # retry instead of recursing here.
        client = self._clients.get(shard_id) or self._connect(shard_id)
        client.request("replay", streams=payload)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def append(self, stream_id: str, values: np.ndarray) -> None:
        """Stage points on one stream (shared memory; flushed by :meth:`flush`)."""
        if self._closed:
            raise ValueError("service is closed")
        values = np.asarray(values, dtype=np.float64).ravel()
        buffer = self._buffers.get(stream_id)
        if buffer is None:
            buffer = SharedSeriesBuffer(
                stream_id, initial_capacity=max(
                    self.config.initial_stream_capacity, len(values)))
            self._buffers[stream_id] = buffer
            self._journal[stream_id] = []
        buffer.append(values)
        self._staged.add(stream_id)

    def push(self, stream_id: str, values: np.ndarray) -> Dict[str, object]:
        """Append to one stream and flush immediately (single-stream ticks)."""
        self.append(stream_id, values)
        return self.flush()[stream_id]

    def flush(self) -> Dict[str, Dict[str, object]]:
        """Process every staged append: one ``push_batch`` per owning shard.

        The per-shard requests go out **concurrently** (threads; the GIL is
        released while waiting on sockets), so shard processes compute their
        batches in parallel — this is where the multi-shard throughput win
        comes from.  Results are merged and journalled in deterministic
        shard order afterwards.
        """
        if not self._staged:
            return {}
        staged = sorted(self._staged)
        updates: Dict[str, Dict[str, object]] = {}
        by_shard = self.ring.assign(staged)
        shard_order = sorted(by_shard)

        def push_one(shard_id: str) -> Dict[str, object]:
            ticks = [{"stream": stream,
                      "shm": self._buffers[stream].name,
                      "length": self._buffers[stream].length}
                     for stream in by_shard[shard_id]]
            return self._request(shard_id, "push_batch", ticks=ticks)

        if len(shard_order) == 1:
            responses = {shard_order[0]: push_one(shard_order[0])}
        else:
            with ThreadPoolExecutor(max_workers=len(shard_order)) as pool:
                responses = dict(zip(shard_order, pool.map(push_one, shard_order)))
        for shard_id in shard_order:
            # Journal only after the shard acknowledged: recovery replays to
            # the pre-tick state and the retry re-applies the tick.
            for stream in by_shard[shard_id]:
                self._journal[stream].append(self._buffers[stream].length)
                self._staged.discard(stream)
            updates.update(responses[shard_id]["updates"])

        drifted = sorted(stream for stream, update in updates.items()
                         if update.get("drift_triggered"))
        if self._selection_cache is not None:
            for stream, update in updates.items():
                self._selection_cache.put(stream, {
                    "stream": stream,
                    "selected_index": update["selected_index"],
                    "selected_model": update["selected_model"],
                    "votes": update["votes"],
                    "n_windows": update["windows"],
                    "provisional": update["provisional"],
                })
        if drifted:
            self._broadcast_invalidate(drifted)
        if self.audit.enabled:
            for stream in sorted(updates):
                self._audit_update(stream, updates[stream])
        return updates

    def _audit_update(self, stream: str, update: Dict[str, object]) -> None:
        """Audit one flush decision from the router's vantage point.

        The shard computed the decision; the router owns the bytes (the
        shared buffer) and the windowing knobs the engine factory
        advertised, so it can stamp the same replayable content-hashed
        inputs the in-process engine records.  ``vote_start`` is recovered
        from the total complete-window count minus the rows still voting.
        """
        inputs = None
        cfg = self._streaming_config
        if cfg is not None and not update.get("provisional"):
            stride = cfg.stride or cfg.window
            total = complete_window_count(int(update["length"]), cfg.window, stride)
            inputs = selection_inputs(
                self._buffers[stream].series,
                window=cfg.window, stride=stride,
                aggregation=cfg.aggregation,
                vote_start=max(total - int(update["windows"]), 0),
                predict_batch_size=cfg.predict_batch_size)
        if update.get("drift_triggered"):
            self.audit.record(
                "drift", stream=stream,
                statistic=float(update.get("drift_statistic") or 0.0))
        if update.get("changed"):
            self.audit.record(
                "reselection", stream=stream,
                selected_index=update["selected_index"],
                selected_model=update["selected_model"])
        self.audit.record(
            "selection", stream=stream,
            length=update["length"],
            n_new_windows=update["new_windows"],
            n_windows=update["windows"],
            selected_index=update["selected_index"],
            selected_model=update["selected_model"],
            votes=dict(update["votes"]),
            changed=bool(update["changed"]),
            provisional=bool(update["provisional"]),
            drift_statistic=float(update.get("drift_statistic") or 0.0),
            drift_triggered=bool(update.get("drift_triggered")),
            selector_tier=(cfg.selector_tier if cfg is not None else "teacher"),
            inputs=inputs)

    def _broadcast_invalidate(self, streams: List[str]) -> None:
        """Drift re-selection changed answers: clear every shard's memo."""
        self.invalidations_broadcast += 1
        self._c_invalidations.inc()
        for shard_id in self.shard_ids:
            self._request(shard_id, "invalidate", streams=streams)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def select(self, stream_id: str) -> Optional[Dict[str, object]]:
        """The stream's current selection (front-end LRU, then its shard)."""
        if self._selection_cache is not None and stream_id not in self._staged:
            hit = self._selection_cache.get(stream_id)
            if hit is not None:
                return {**hit, "cached": True}
        response = self._request(self.ring.owner(stream_id), "select",
                                 stream=stream_id)
        selection = response.get("selection")
        if selection is not None and self._selection_cache is not None \
                and stream_id not in self._staged:
            self._selection_cache.put(stream_id, dict(selection))
        return selection

    def scores(self, stream_id: str) -> np.ndarray:
        """Per-point anomaly scores of one stream's scored prefix."""
        response = self._request(self.ring.owner(stream_id), "scores",
                                 stream=stream_id)
        return np.asarray(response["scores"], dtype=np.float64)

    def series(self, stream_id: str) -> np.ndarray:
        """Every point received on one stream (front-end shared memory)."""
        return self._buffers[stream_id].series

    def explain(self, stream_id: str) -> Optional[Dict[str, object]]:
        """Vote breakdown + drift trajectory from the stream's owning shard."""
        response = self._request(self.ring.owner(stream_id), "explain",
                                 stream=stream_id)
        return response.get("explain")

    def metrics_text(self) -> str:
        """Prometheus text: the router's registry plus every shard's.

        Sections are separated by ``# shard: <id>`` comment headers; the
        router section comes first.  Shard registries live in forked
        processes, so their samples are fetched over the request protocol.
        """
        sections = ["# service: frontend\n" + self._registry.render_prometheus()]
        for shard_id in self.shard_ids:
            response = self._request(shard_id, "metrics")
            sections.append(f"# shard: {shard_id}\n" + str(response.get("metrics", "")))
        return "\n".join(sections)

    @property
    def stream_ids(self) -> List[str]:
        return sorted(self._buffers)

    def stats(self) -> Dict[str, object]:
        """Aggregate counters across shards plus service-level counters."""
        per_shard: Dict[str, Dict[str, object]] = {}
        for shard_id in self.shard_ids:
            per_shard[shard_id] = self._request(shard_id, "stats")
        totals: Dict[str, int] = {}
        for response in per_shard.values():
            for key, value in response["stats"].items():
                totals[key] = totals.get(key, 0) + int(value)
        cache_stats = self._selection_cache.stats if self._selection_cache else None
        return {
            "shards": len(self.shard_ids),
            "streams": len(self._buffers),
            "totals": totals,
            "per_shard": {sid: resp["stats"] for sid, resp in per_shard.items()},
            "ring": self.ring.to_state(),
            "restarts": self.supervisor.restarts,
            "recoveries": self.recoveries,
            "invalidations_broadcast": self.invalidations_broadcast,
            "transport_retransmits": self._retired_retransmits + sum(
                client.retransmits for client in self._clients.values()),
            "selection_cache": ({
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "size": cache_stats.size,
            } if cache_stats is not None else None),
        }

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop every shard and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for shard_id, client in list(self._clients.items()):
            try:
                client.request("shutdown")
            except (RuntimeError, OSError, ConnectionError, TimeoutError):
                pass  # a dead shard cannot acknowledge its shutdown
            self._retired_retransmits += client.retransmits
            client.close()
        self._clients.clear()
        self.supervisor.stop_all()
        for buffer in self._buffers.values():
            buffer.close()
        self._buffers.clear()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedService(shards={len(self.shard_ids)}, "
                f"streams={len(self._buffers)}, "
                f"restarts={self.supervisor.restarts})")


# --------------------------------------------------------------------------- #
# the asyncio TCP front end (what `serve-sharded` runs)
# --------------------------------------------------------------------------- #
class ServiceFrontend:
    """Serve :class:`ShardedService` over TCP (length-prefixed JSON).

    Client ops mirror the Python API: ``push`` (stream + values), ``append``
    + ``flush``, ``select``, ``scores``, ``stats``, ``explain``,
    ``metrics``, ``ping``.  Values arrive
    as JSON arrays from remote clients; the zero-copy handoff applies on the
    front-end → shard hop.  Service calls are serialised by a lock and run
    in a worker thread so one slow shard request does not stall the accept
    loop.
    """

    def __init__(self, service: ShardedService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._lock = threading.Lock()

    async def start(self) -> int:
        """Bind and start accepting; returns the actual port."""
        self._server = await asyncio.start_server(self._handle_client,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = int.from_bytes(header, "big")
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                request: object = None
                try:
                    request = json.loads(body.decode("utf-8"))
                    response = await asyncio.get_running_loop().run_in_executor(
                        None, self._execute, request)
                except Exception as error:
                    response = {"error": f"{type(error).__name__}: {error}"}
                if isinstance(request, dict) and "seq" in request:
                    response["seq"] = request["seq"]
                writer.write(encode_message(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer already gone
                pass

    def _execute(self, request: Dict[str, object]) -> Dict[str, object]:
        if not isinstance(request, dict):
            raise ValueError("requests must be JSON objects")
        op = request.get("op")
        with self._lock:
            if op == "ping":
                return {"ok": True, "shards": len(self.service.shard_ids)}
            if op == "push":
                update = self.service.push(str(request["stream"]),
                                           np.asarray(request["values"], dtype=np.float64))
                return {"update": update}
            if op == "append":
                self.service.append(str(request["stream"]),
                                    np.asarray(request["values"], dtype=np.float64))
                return {"ok": True}
            if op == "flush":
                return {"updates": self.service.flush()}
            if op == "select":
                return {"selection": self.service.select(str(request["stream"]))}
            if op == "scores":
                return {"scores": [float(s)
                                   for s in self.service.scores(str(request["stream"]))]}
            if op == "stats":
                return {"stats": self.service.stats()}
            if op == "explain":
                return {"explain": self.service.explain(str(request["stream"]))}
            if op == "metrics":
                return {"metrics": self.service.metrics_text()}
            raise ValueError(f"unknown op {op!r}")
