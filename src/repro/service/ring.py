"""Consistent-hash ring: which shard owns which stream.

The sharded service partitions streams across shard processes by hashing
stream ids onto a ring of virtual nodes (128 ``replicas`` per shard by
default, blake2b positions).  Consistent hashing gives the two properties the
supervisor's rebalance logic relies on:

* **uniformity** — with enough virtual nodes per shard, ownership across a
  large stream population is close to uniform (the property tests bound it
  with a chi-square statistic), and
* **minimal movement** — adding or removing one shard reassigns only the
  streams adjacent to that shard's virtual nodes (about ``K/N`` of ``K``
  streams over ``N`` shards), so a rebalance replays a small slice of the
  workload instead of all of it.

Ring state is pure data (shard ids + replica count) and serialises to a
JSON-ready dict, so a restarted supervisor — or a test asserting
determinism — can rebuild the exact same ownership map.  Positions depend
only on shard id and replica index, never on insertion order.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple


def _position(token: str) -> int:
    """Deterministic 64-bit ring position of one token."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Maps stream ids to shard ids via consistent hashing."""

    def __init__(self, shard_ids: Sequence[str] = (), replicas: int = 128) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._shards: List[str] = []
        #: sorted (position, shard_id) pairs — the ring itself — plus the
        #: positions alone for O(log n) bisect lookups
        self._points: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    # ------------------------------------------------------------------ #
    @property
    def shard_ids(self) -> List[str]:
        """Member shards, sorted (membership is a set; order never matters)."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    # ------------------------------------------------------------------ #
    def add(self, shard_id: str) -> None:
        """Add a shard (``replicas`` virtual nodes) to the ring."""
        if not shard_id:
            raise ValueError("shard_id must be non-empty")
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._shards.append(shard_id)
        for replica in range(self.replicas):
            point = (_position(f"{shard_id}#{replica}"), shard_id)
            bisect.insort(self._points, point)
        self._positions = [p[0] for p in self._points]

    def remove(self, shard_id: str) -> None:
        """Remove a shard and all its virtual nodes from the ring."""
        if shard_id not in self._shards:
            raise KeyError(f"shard {shard_id!r} is not on the ring")
        self._shards.remove(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]
        self._positions = [p[0] for p in self._points]

    def owner(self, stream_id: str) -> str:
        """The shard owning ``stream_id`` (first virtual node clockwise)."""
        if not self._points:
            raise LookupError("ring has no shards")
        index = bisect.bisect_right(self._positions, _position(stream_id))
        if index == len(self._points):  # wrap around the ring
            index = 0
        return self._points[index][1]

    def assign(self, stream_ids: Sequence[str]) -> Dict[str, List[str]]:
        """Group stream ids by owning shard (shards with no streams omitted)."""
        grouped: Dict[str, List[str]] = {}
        for stream_id in stream_ids:
            grouped.setdefault(self.owner(stream_id), []).append(stream_id)
        return grouped

    # ------------------------------------------------------------------ #
    def to_state(self) -> Dict[str, object]:
        """JSON-ready snapshot; :meth:`from_state` rebuilds the same ring."""
        return {"replicas": self.replicas, "shards": self.shard_ids}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "HashRing":
        return cls(shard_ids=list(state["shards"]), replicas=int(state["replicas"]))

    def __repr__(self) -> str:
        return f"HashRing(shards={self.shard_ids}, replicas={self.replicas})"
