"""The shard process: one :class:`StreamEngine` behind a request socket.

Each shard owns a consistent-hash slice of the stream population and runs
the full incremental machinery for it — windowing, running votes, drift
monitoring, online scoring — exactly as the single-process engine would.
Series points arrive as shared-memory references (never through the
socket): a ``push_batch`` request names ``(segment, length)`` per stream
and the handler hands the engine zero-copy views via
:meth:`StreamEngine.append_view`, then flushes once for the whole batch —
the same cross-stream batching the engine performs in process.

Protocol properties the front end and chaos harness rely on:

* **idempotence** — responses are cached per connection by request ``seq``;
  a retransmitted or duplicated request is answered from the cache without
  re-executing, so transport faults never double-append,
* **replayability** — a ``replay`` request rebuilds per-stream state from
  the shared-memory buffers with the original per-stream flush boundaries,
  which makes post-restart selections and scores bitwise-equal to an
  uninterrupted run,
* **chaos hooks** — a ``chaos`` request injects a per-request sleep, the
  deterministic stand-in for a hung or pathologically slow shard.

Shards are forked from the supervisor, so the engine factory and the
trained selector it closes over are inherited copy-on-write — nothing is
pickled to start a shard.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List

from ..obs.metrics import Counter, default_registry
from ..streaming.engine import StreamEngine
from .transport import (
    SharedSegmentCache,
    TransportError,
    recv_message,
    send_message,
)

#: per-connection response-cache depth (covers retransmits and duplicates)
RESPONSE_CACHE_DEPTH = 64


def _stats_dict(engine: StreamEngine) -> Dict[str, object]:
    stats = engine.stats
    return {
        "n_streams": stats.n_streams,
        "flushes": stats.flushes,
        "points": stats.points,
        "windows": stats.windows,
        "forward_windows": stats.forward_windows,
        "cached_windows": stats.cached_windows,
        "drift_triggers": stats.drift_triggers,
        "tail_rescores": stats.tail_rescores,
        "full_rescores": stats.full_rescores,
        "escalated_windows": stats.escalated_windows,
        "slo_fallbacks": stats.slo_fallbacks,
    }


class ShardServer:
    """Serve one engine over blocking length-prefixed JSON requests."""

    def __init__(self, shard_id: str, listen_sock: socket.socket,
                 engine_factory: Callable[[], StreamEngine]) -> None:
        self.shard_id = shard_id
        self._listen_sock = listen_sock
        self.engine = engine_factory()
        self._segments = SharedSegmentCache()
        self._engine_lock = threading.Lock()
        self._running = True
        #: requests answered from the exactly-once response cache after the
        #: fault injector duplicated (or the client retransmitted) a frame —
        #: the chaos suite asserts on this instead of inferring from timing
        self._duplicates_suppressed = default_registry().register(Counter(
            "repro_shard_duplicates_suppressed_total",
            "requests answered from the exactly-once response cache",
            {"shard": shard_id}))
        #: memoised ``select`` responses, invalidated by pushes/invalidate
        self._select_memo: Dict[str, Dict[str, object]] = {}
        #: chaos: seconds to sleep before handling each request
        self._chaos_sleep_s = 0.0

    # ------------------------------------------------------------------ #
    # request loop
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Accept connections until a ``shutdown`` request arrives."""
        self._listen_sock.settimeout(0.2)
        threads: List[threading.Thread] = []
        try:
            while self._running:
                try:
                    conn, _ = self._listen_sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(target=self._serve_connection,
                                          args=(conn,), daemon=True)
                thread.start()
                threads.append(thread)
        finally:
            self._listen_sock.close()
            for thread in threads:
                thread.join(timeout=1.0)
            self._segments.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        responses: "OrderedDict[int, Dict[str, object]]" = OrderedDict()
        try:
            while self._running:
                try:
                    request = recv_message(conn)
                except TransportError:
                    break
                if request is None:
                    break
                if self._chaos_sleep_s:
                    time.sleep(self._chaos_sleep_s)
                seq = request.get("seq")
                if seq in responses:  # retransmit/duplicate: answer, don't redo
                    self._duplicates_suppressed.inc()
                    if self.engine.audit.enabled:
                        self.engine.audit.record(
                            "duplicate_suppressed", shard=self.shard_id,
                            seq=seq, op=request.get("op"))
                    send_message(conn, responses[seq])
                    continue
                try:
                    response = self._dispatch(request)
                except Exception as error:  # surfaced to the front end
                    response = {"error": f"{type(error).__name__}: {error}"}
                response["seq"] = seq
                responses[seq] = response
                while len(responses) > RESPONSE_CACHE_DEPTH:
                    responses.popitem(last=False)
                try:
                    send_message(conn, response)
                except OSError:
                    break
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"unknown op {op!r}")
        with self._engine_lock:
            return handler(request)

    def _append_tick(self, tick: Dict[str, object]) -> None:
        stream = str(tick["stream"])
        view = self._segments.view(stream, str(tick["shm"]), int(tick["length"]))
        self.engine.append_view(stream, view)

    def _op_ping(self, request: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, "shard": self.shard_id, "pid": os.getpid()}

    def _op_push_batch(self, request: Dict[str, object]) -> Dict[str, object]:
        ticks = request["ticks"]
        for tick in ticks:
            self._append_tick(tick)
        updates = self.engine.flush()
        for tick in ticks:
            self._select_memo.pop(str(tick["stream"]), None)
        return {"updates": {stream: update.as_dict()
                            for stream, update in updates.items()}}

    def _op_replay(self, request: Dict[str, object]) -> Dict[str, object]:
        """Rebuild streams from their shared buffers (restart/rebalance).

        Boundaries are the original per-stream flush lengths, so votes,
        drift state and scores come out bitwise-equal to the uninterrupted
        engine (per-stream results are flush-grouping exact; see
        ``tests/test_streaming.py::test_tick_boundaries_do_not_change_results``).
        """
        replayed = 0
        for entry in request["streams"]:
            stream = str(entry["stream"])
            self.engine.drop_stream(stream)
            self._select_memo.pop(stream, None)
            full = self._segments.view(stream, str(entry["shm"]), int(entry["length"]))
            for boundary in entry["boundaries"]:
                self.engine.append_view(stream, full[: int(boundary)])
                self.engine.flush()
            replayed += 1
        return {"ok": True, "replayed": replayed}

    def _op_select(self, request: Dict[str, object]) -> Dict[str, object]:
        stream = str(request["stream"])
        memo = self._select_memo.get(stream)
        if memo is not None:
            return {"selection": memo, "memoized": True}
        if stream not in self.engine:
            return {"selection": None}
        view = self.engine.selection(stream)
        if view is None:
            return {"selection": None}
        names = self.engine.detector_names
        selection = {
            "stream": stream,
            "selected_index": view.selected_index,
            "selected_model": names[view.selected_index],
            "votes": {name: float(view.aggregated[k]) for k, name in enumerate(names)},
            "n_windows": view.n_windows,
            "provisional": view.provisional,
        }
        self._select_memo[stream] = selection
        return {"selection": selection, "memoized": False}

    def _op_scores(self, request: Dict[str, object]) -> Dict[str, object]:
        stream = str(request["stream"])
        if stream not in self.engine:
            return {"scores": []}
        return {"scores": [float(s) for s in self.engine.scores(stream)]}

    def _op_series_length(self, request: Dict[str, object]) -> Dict[str, object]:
        stream = str(request["stream"])
        if stream not in self.engine:
            return {"length": 0}
        return {"length": int(len(self.engine.series(stream)))}

    def _op_stats(self, request: Dict[str, object]) -> Dict[str, object]:
        stats = _stats_dict(self.engine)
        stats["duplicates_suppressed"] = self._duplicates_suppressed.value
        return {"stats": stats,
                "streams": sorted(self.engine.stream_ids)}

    def _op_explain(self, request: Dict[str, object]) -> Dict[str, object]:
        """Vote breakdown + drift trajectory for one owned stream."""
        from ..obs.explain import explain_stream  # deferred: UI-side helper

        stream = str(request["stream"])
        if stream not in self.engine:
            return {"explain": None}
        return {"explain": explain_stream(self.engine, stream)}

    def _op_metrics(self, request: Dict[str, object]) -> Dict[str, object]:
        """This shard process's metrics in Prometheus text format."""
        return {"metrics": default_registry().render_prometheus(),
                "shard": self.shard_id}

    def _op_drop_streams(self, request: Dict[str, object]) -> Dict[str, object]:
        dropped = 0
        for stream in request["streams"]:
            stream = str(stream)
            dropped += self.engine.drop_stream(stream)
            self._segments.drop(stream)
            self._select_memo.pop(stream, None)
        return {"ok": True, "dropped": dropped}

    def _op_invalidate(self, request: Dict[str, object]) -> Dict[str, object]:
        """Broadcast invalidation: drop memoised selections for streams."""
        invalidated = 0
        for stream in request["streams"]:
            invalidated += self._select_memo.pop(str(stream), None) is not None
        return {"ok": True, "invalidated": invalidated}

    def _op_chaos(self, request: Dict[str, object]) -> Dict[str, object]:
        self._chaos_sleep_s = float(request.get("sleep_s", 0.0))
        return {"ok": True, "sleep_s": self._chaos_sleep_s}

    def _op_shutdown(self, request: Dict[str, object]) -> Dict[str, object]:
        self._running = False
        return {"ok": True}


def shard_main(shard_id: str, listen_sock: socket.socket,
               engine_factory: Callable[[], StreamEngine]) -> None:
    """Entry point of a forked shard process."""
    try:
        ShardServer(shard_id, listen_sock, engine_factory).serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - CLI ^C propagates to children
        pass
