"""Statistical comparison of model-selection solutions across datasets.

Fig. 4 of the paper compares ten solutions over 14 datasets.  Beyond the
raw per-dataset table, the usual way to summarise such a comparison is by
average ranks, pairwise win/tie/loss counts and bootstrap confidence
intervals — this module provides those utilities for the benchmark harness
and for users comparing their own selectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np


def _as_matrix(results: Mapping[str, Mapping[str, float]]) -> Tuple[List[str], List[str], np.ndarray]:
    """Convert {method: {dataset: score}} into (methods, datasets, matrix)."""
    methods = list(results)
    datasets = sorted({d for scores in results.values() for d in scores})
    matrix = np.full((len(methods), len(datasets)), np.nan)
    for i, method in enumerate(methods):
        for j, dataset in enumerate(datasets):
            if dataset in results[method]:
                matrix[i, j] = results[method][dataset]
    if np.isnan(matrix).any():
        raise ValueError("every method must report a score for every dataset")
    return methods, datasets, matrix


def average_ranks(results: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
    """Average rank of each method over datasets (rank 1 = best, ties averaged)."""
    methods, _, matrix = _as_matrix(results)
    n_methods, n_datasets = matrix.shape
    ranks = np.zeros_like(matrix)
    for j in range(n_datasets):
        column = matrix[:, j]
        order = np.argsort(-column)
        column_ranks = np.empty(n_methods)
        column_ranks[order] = np.arange(1, n_methods + 1)
        # Average ranks over exact ties.
        for value in np.unique(column):
            tied = column == value
            if tied.sum() > 1:
                column_ranks[tied] = column_ranks[tied].mean()
        ranks[:, j] = column_ranks
    return {method: float(ranks[i].mean()) for i, method in enumerate(methods)}


@dataclass(frozen=True)
class PairwiseRecord:
    """Win/tie/loss record of ``method_a`` against ``method_b``."""

    method_a: str
    method_b: str
    wins: int
    ties: int
    losses: int

    @property
    def win_rate(self) -> float:
        total = self.wins + self.ties + self.losses
        return self.wins / total if total else 0.0


def pairwise_comparison(
    results: Mapping[str, Mapping[str, float]],
    reference: str,
    tie_margin: float = 1e-9,
) -> List[PairwiseRecord]:
    """Win/tie/loss of ``reference`` against every other method, per dataset."""
    methods, _, matrix = _as_matrix(results)
    if reference not in methods:
        raise KeyError(f"unknown reference method {reference!r}")
    ref_row = matrix[methods.index(reference)]
    records = []
    for i, method in enumerate(methods):
        if method == reference:
            continue
        diff = ref_row - matrix[i]
        wins = int((diff > tie_margin).sum())
        losses = int((diff < -tie_margin).sum())
        ties = int(len(diff) - wins - losses)
        records.append(PairwiseRecord(reference, method, wins, ties, losses))
    return records


def bootstrap_mean_ci(
    scores: Sequence[float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Bootstrap mean and confidence interval of per-dataset scores."""
    scores = np.asarray(list(scores), dtype=np.float64)
    if len(scores) == 0:
        raise ValueError("scores must be non-empty")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(scores, size=(n_resamples, len(scores)), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resamples, [alpha, 1.0 - alpha])
    return float(scores.mean()), float(low), float(high)


def improvement_significance(
    scores_a: Mapping[str, float],
    scores_b: Mapping[str, float],
    n_resamples: int = 2000,
    seed: int = 0,
) -> Dict[str, float]:
    """Paired bootstrap test of "A beats B" over the shared datasets.

    Returns the mean per-dataset improvement, its bootstrap CI, and the
    fraction of resamples where the improvement is positive (a one-sided
    "probability of superiority"-style summary).
    """
    shared = sorted(set(scores_a) & set(scores_b))
    if not shared:
        raise ValueError("the two score dictionaries share no datasets")
    diffs = np.array([scores_a[d] - scores_b[d] for d in shared])
    rng = np.random.default_rng(seed)
    resamples = rng.choice(diffs, size=(n_resamples, len(diffs)), replace=True).mean(axis=1)
    return {
        "mean_improvement": float(diffs.mean()),
        "ci_low": float(np.quantile(resamples, 0.025)),
        "ci_high": float(np.quantile(resamples, 0.975)),
        "p_improvement": float((resamples > 0).mean()),
        "n_datasets": float(len(shared)),
    }
