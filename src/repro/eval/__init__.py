"""``repro.eval`` — metrics, oracle labelling and selection evaluation."""

from .metrics import (
    accuracy,
    auc_pr,
    auc_roc,
    best_f1,
    detection_report,
    precision_at_k,
    precision_recall_curve,
    top_k_accuracy,
)
from .oracle import METRICS, Oracle
from .evaluation import (
    SelectionEvaluation,
    aggregate_window_probas,
    evaluate_selection,
    oracle_upper_bound,
    predict_for_series,
    single_best_baseline,
)
from .ranking import (
    PairwiseRecord,
    average_ranks,
    bootstrap_mean_ci,
    improvement_significance,
    pairwise_comparison,
)

__all__ = [
    "accuracy", "auc_pr", "auc_roc", "best_f1", "detection_report",
    "precision_at_k", "precision_recall_curve", "top_k_accuracy",
    "METRICS", "Oracle",
    "SelectionEvaluation", "aggregate_window_probas", "evaluate_selection",
    "oracle_upper_bound", "predict_for_series", "single_best_baseline",
    "PairwiseRecord", "average_ranks", "bootstrap_mean_ci",
    "improvement_significance", "pairwise_comparison",
]
