"""Evaluation of TSAD model selection solutions.

Follows the paper's protocol: a selector predicts one TSAD model per test
series (majority vote over its windows); the reported score of the solution
on a dataset is the average detection performance (AUC-PR by default) of
the *selected* models over that dataset's series.  The performance values
come from the oracle matrix, exactly as in the benchmark of Sylligardos et
al. that the paper follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.records import TimeSeriesRecord
from ..data.windows import extract_windows
from ..selectors.base import Selector
from .metrics import accuracy, top_k_accuracy


@dataclass
class SelectionEvaluation:
    """Result of evaluating one selector over a set of test series."""

    per_dataset_score: Dict[str, float]
    per_series_score: Dict[str, float]
    selected_models: Dict[str, str]
    selection_accuracy: float
    top3_accuracy: float

    @property
    def average_score(self) -> float:
        """Unweighted mean over datasets (the paper's aggregate AUC-PR)."""
        if not self.per_dataset_score:
            return 0.0
        return float(np.mean(list(self.per_dataset_score.values())))


def aggregate_window_probas(proba: np.ndarray, aggregation: str = "vote") -> tuple[int, np.ndarray]:
    """Reduce one series' per-window probabilities to a model choice.

    Returns (selected model index, per-class aggregated probabilities).
    ``aggregation`` is either ``"vote"`` (majority voting, the paper's
    default) or ``"mean"`` (average predicted probabilities).  This is the
    single aggregation implementation shared by the one-shot pipeline and
    the batched serving layer, so both produce identical selections.
    """
    proba = np.asarray(proba, dtype=np.float64)
    if aggregation == "vote":
        votes = proba.argmax(axis=1)
        counts = np.bincount(votes, minlength=proba.shape[1]).astype(float)
        aggregated = counts / counts.sum()
    elif aggregation == "mean":
        aggregated = proba.mean(axis=0)
    else:
        raise ValueError("aggregation must be 'vote' or 'mean'")
    return int(aggregated.argmax()), aggregated


def predict_for_series(
    selector: Selector,
    record: TimeSeriesRecord,
    window: int,
    aggregation: str = "vote",
) -> tuple[int, np.ndarray]:
    """Predict a TSAD model for one series (window, classify, aggregate)."""
    windows = extract_windows(record.series, window, stride=window)
    return aggregate_window_probas(selector.predict_proba(windows), aggregation)


def evaluate_selection(
    selector: Selector,
    records: Sequence[TimeSeriesRecord],
    performance_matrix: np.ndarray,
    detector_names: Sequence[str],
    window: int,
    aggregation: str = "vote",
) -> SelectionEvaluation:
    """Evaluate a fitted selector on labelled test series.

    ``performance_matrix[i, j]`` must hold the detection performance of
    detector ``j`` on ``records[i]`` (from :class:`repro.eval.oracle.Oracle`).
    """
    performance_matrix = np.asarray(performance_matrix, dtype=np.float64)
    if performance_matrix.shape != (len(records), len(detector_names)):
        raise ValueError("performance matrix does not match records/detectors")

    per_series: Dict[str, float] = {}
    per_dataset_values: Dict[str, List[float]] = {}
    selected: Dict[str, str] = {}
    true_best = performance_matrix.argmax(axis=1)
    predictions = np.zeros(len(records), dtype=int)
    aggregated_probas = np.zeros((len(records), len(detector_names)))

    for i, record in enumerate(records):
        choice, aggregated = predict_for_series(selector, record, window, aggregation)
        predictions[i] = choice
        aggregated_probas[i] = aggregated
        score = float(performance_matrix[i, choice])
        per_series[record.name] = score
        per_dataset_values.setdefault(record.dataset, []).append(score)
        selected[record.name] = detector_names[choice]

    per_dataset = {dataset: float(np.mean(values)) for dataset, values in per_dataset_values.items()}
    return SelectionEvaluation(
        per_dataset_score=per_dataset,
        per_series_score=per_series,
        selected_models=selected,
        selection_accuracy=accuracy(true_best, predictions),
        top3_accuracy=top_k_accuracy(true_best, aggregated_probas, k=3),
    )


def oracle_upper_bound(
    records: Sequence[TimeSeriesRecord],
    performance_matrix: np.ndarray,
) -> Dict[str, float]:
    """Per-dataset score of always picking the best model (selection ceiling)."""
    performance_matrix = np.asarray(performance_matrix, dtype=np.float64)
    per_dataset: Dict[str, List[float]] = {}
    best = performance_matrix.max(axis=1)
    for record, value in zip(records, best):
        per_dataset.setdefault(record.dataset, []).append(float(value))
    return {dataset: float(np.mean(values)) for dataset, values in per_dataset.items()}


def single_best_baseline(
    records: Sequence[TimeSeriesRecord],
    performance_matrix: np.ndarray,
    detector_names: Sequence[str],
) -> Dict[str, float]:
    """Score of always running the single detector that is best on average.

    This is the "no selection" reference point: if one detector dominated
    everywhere, model selection would be pointless.
    """
    performance_matrix = np.asarray(performance_matrix, dtype=np.float64)
    best_overall = int(performance_matrix.mean(axis=0).argmax())
    per_dataset: Dict[str, List[float]] = {}
    for record, row in zip(records, performance_matrix):
        per_dataset.setdefault(record.dataset, []).append(float(row[best_overall]))
    result = {dataset: float(np.mean(values)) for dataset, values in per_dataset.items()}
    result["__detector__"] = best_overall  # type: ignore[assignment]
    result["__detector_name__"] = detector_names[best_overall]  # type: ignore[assignment]
    return result
