"""Anomaly-detection and classification metrics.

The paper's headline metric is AUC-PR of the selected TSAD model, computed
from the true point labels and the detector's point-wise anomaly scores.
AUC-ROC, best F1 and precision@k are provided as secondary metrics, plus
top-k selection accuracy used by the system's validation view.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _validate(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels).astype(int).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError(f"labels and scores must align: {labels.shape} vs {scores.shape}")
    if len(labels) == 0:
        raise ValueError("empty inputs")
    return labels, scores


def precision_recall_curve(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision/recall values at every distinct score threshold (descending)."""
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    sorted_scores = scores[order]

    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(1 - sorted_labels)
    # Keep only the last index of each distinct threshold.
    distinct = np.where(np.diff(sorted_scores))[0]
    idx = np.concatenate([distinct, [len(sorted_labels) - 1]])

    tp = tp[idx]
    fp = fp[idx]
    total_positive = labels.sum()
    precision = tp / np.maximum(tp + fp, 1)
    recall = tp / max(total_positive, 1)
    thresholds = sorted_scores[idx]

    # Prepend the (recall=0, precision=1) point.
    precision = np.concatenate([[1.0], precision])
    recall = np.concatenate([[0.0], recall])
    return precision, recall, thresholds


def auc_pr(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (average-precision style).

    Uses the step-wise interpolation of average precision:
    ``AP = sum_i (R_i - R_{i-1}) * P_i``.  Series without any positive label
    return 0.0 (the convention used when a test series has no anomaly).
    """
    labels, scores = _validate(labels, scores)
    if labels.sum() == 0:
        return 0.0
    precision, recall, _ = precision_recall_curve(labels, scores)
    return float(np.sum(np.diff(recall) * precision[1:]))


def auc_roc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (handles ties)."""
    labels, scores = _validate(labels, scores)
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores)
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    pos_rank_sum = ranks[labels == 1].sum()
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def best_f1(labels: np.ndarray, scores: np.ndarray) -> float:
    """Maximum F1 over all score thresholds."""
    labels, scores = _validate(labels, scores)
    if labels.sum() == 0:
        return 0.0
    precision, recall, _ = precision_recall_curve(labels, scores)
    f1 = 2 * precision * recall / np.maximum(precision + recall, 1e-12)
    return float(f1.max())


def precision_at_k(labels: np.ndarray, scores: np.ndarray, k: int | None = None) -> float:
    """Precision among the top-k scored points (k defaults to #positives)."""
    labels, scores = _validate(labels, scores)
    n_pos = int(labels.sum())
    if n_pos == 0:
        return 0.0
    k = k or n_pos
    k = min(k, len(labels))
    top = np.argsort(-scores)[:k]
    return float(labels[top].mean())


def detection_report(labels: np.ndarray, scores: np.ndarray) -> Dict[str, float]:
    """All point-wise detection metrics in one dictionary."""
    return {
        "auc_pr": auc_pr(labels, scores),
        "auc_roc": auc_roc(labels, scores),
        "best_f1": best_f1(labels, scores),
        "precision_at_k": precision_at_k(labels, scores),
    }


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain classification accuracy."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if len(y_true) == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def top_k_accuracy(y_true: np.ndarray, probabilities: np.ndarray, k: int = 3) -> float:
    """Fraction of samples whose true class is within the top-k predictions."""
    y_true = np.asarray(y_true, dtype=int).ravel()
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2 or len(y_true) != len(probabilities):
        raise ValueError("probabilities must be (n_samples, n_classes) aligned with y_true")
    k = min(k, probabilities.shape[1])
    top = np.argsort(-probabilities, axis=1)[:, :k]
    return float(np.mean([y_true[i] in top[i] for i in range(len(y_true))]))
