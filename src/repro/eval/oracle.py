"""Oracle labelling: run every candidate detector on every series.

The performance matrix ``P[i, j] = metric(detector_j on series_i)`` is the
"historical knowledge" of the paper: its argmax gives the hard label of the
standard framework, the full row gives the soft-label knowledge used by
PISL, and it also defines the evaluation target (AUC-PR of the selected
model).  Because running 12 detectors over many series is the expensive
step, results are cached on disk keyed by the data and detector settings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.records import TimeSeriesRecord
from ..detectors.base import AnomalyDetector
from ..serving.workers import WorkerPool
from .metrics import auc_pr, auc_roc, best_f1

METRICS: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "auc_pr": auc_pr,
    "auc_roc": auc_roc,
    "best_f1": best_f1,
}


def _cache_key(records: Sequence[TimeSeriesRecord], detector_names: Sequence[str], metric: str) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for record in records:
        hasher.update(record.name.encode())
        hasher.update(np.ascontiguousarray(record.series[:64]).tobytes())
        hasher.update(str(record.length).encode())
    hasher.update("|".join(detector_names).encode())
    hasher.update(metric.encode())
    return hasher.hexdigest()


class Oracle:
    """Runs the TSAD model set over series collections and caches the results."""

    def __init__(
        self,
        model_set: Dict[str, AnomalyDetector],
        metric: str = "auc_pr",
        cache_dir: Optional[str | Path] = None,
        verbose: bool = False,
        max_workers: int = 0,
        worker_mode: str = "thread",
    ) -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; available: {sorted(METRICS)}")
        self.model_set = model_set
        self.metric = metric
        self.metric_fn = METRICS[metric]
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.verbose = verbose
        #: ``>= 2`` fans series scoring out to a worker pool (labelling is
        #: embarrassingly parallel across series); 0/1 scores sequentially.
        #: ``worker_mode="process"`` forks workers — the right choice when
        #: the model set contains the GIL-bound neural detectors.
        self.max_workers = max_workers
        self.worker_mode = worker_mode

    @property
    def detector_names(self) -> List[str]:
        return list(self.model_set)

    # ------------------------------------------------------------------ #
    def score_series(self, record: TimeSeriesRecord) -> np.ndarray:
        """Performance of every detector on one series (vector of length m)."""
        row = np.zeros(len(self.model_set))
        for j, (name, detector) in enumerate(self.model_set.items()):
            scores = detector.detect(record.series)
            row[j] = self.metric_fn(record.labels, scores)
            if self.verbose:
                print(f"  [{record.name}] {name}: {self.metric}={row[j]:.4f}")
        return row

    def performance_matrix(self, records: Sequence[TimeSeriesRecord]) -> np.ndarray:
        """(n_series, n_detectors) matrix, loaded from cache when possible."""
        cache_path = None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            key = _cache_key(records, self.detector_names, self.metric)
            cache_path = self.cache_dir / f"oracle_{key}.npz"
            if cache_path.exists():
                with np.load(cache_path, allow_pickle=False) as archive:
                    return archive["performance"]

        def score_one(item):
            i, record = item
            if self.verbose:
                print(f"oracle: scoring series {i + 1}/{len(records)} ({record.name})")
            return self.score_series(record)

        rows = WorkerPool(self.max_workers, mode=self.worker_mode).map(
            score_one, enumerate(records))
        matrix = np.array(rows) if rows else np.zeros((0, len(self.model_set)))

        if cache_path is not None:
            np.savez(cache_path, performance=matrix,
                     detectors=np.array(self.detector_names, dtype="U32"))
        return matrix

    # ------------------------------------------------------------------ #
    def hard_labels(self, performance_matrix: np.ndarray) -> np.ndarray:
        """Index of the best detector per series (the paper's hard label y_i)."""
        return np.asarray(performance_matrix, dtype=np.float64).argmax(axis=1)

    def summary(self, performance_matrix: np.ndarray) -> Dict[str, float]:
        """Aggregate statistics useful for sanity checks and reports."""
        matrix = np.asarray(performance_matrix, dtype=np.float64)
        best = matrix.max(axis=1)
        return {
            "mean_best": float(best.mean()),
            "mean_overall": float(matrix.mean()),
            "n_series": int(matrix.shape[0]),
            "n_detectors": int(matrix.shape[1]),
            "winner_entropy": self._winner_entropy(matrix),
        }

    @staticmethod
    def _winner_entropy(matrix: np.ndarray) -> float:
        """Entropy of the winning-detector distribution (higher = more diverse)."""
        winners = matrix.argmax(axis=1)
        counts = np.bincount(winners, minlength=matrix.shape[1]).astype(float)
        p = counts / counts.sum()
        nonzero = p[p > 0]
        return float(-(nonzero * np.log(nonzero)).sum())
