#!/usr/bin/env python3
"""Documentation checks — the ``docs-check`` target of the Makefile.

Fails (exit code 1) when:

* a public module under ``src/repro`` lacks a module docstring,
* a required documentation file (``README.md``, ``docs/architecture.md``,
  ``docs/cli.md``) is missing, or
* a relative Markdown link in ``README.md`` / ``docs/*.md`` points at a
  file that does not exist.

Run as ``python tools/docs_check.py`` from the repository root (no imports
from the package, so it needs no ``PYTHONPATH``).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent

REQUIRED_DOCS = ["README.md", "docs/architecture.md", "docs/cli.md", "docs/performance.md"]

#: Matches inline Markdown links; group 1 is the target.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def missing_module_docstrings(package_root: Path = ROOT / "src" / "repro") -> List[str]:
    """Public modules (no leading underscore anywhere in the path) without a docstring."""
    problems = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(ROOT)
        parts = rel.parts
        if any(part.startswith("_") and part != "__init__.py" for part in parts):
            continue  # private module or private sub-package
        tree = ast.parse(path.read_text(), filename=str(rel))
        if ast.get_docstring(tree) is None:
            problems.append(str(rel))
    return problems


def broken_markdown_links(doc_files: List[Path]) -> List[str]:
    """Relative links whose target file does not exist (anchors/URLs skipped)."""
    problems = []
    for doc in doc_files:
        for target in _LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (doc.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(f"{doc.relative_to(ROOT)} -> {target}")
    return problems


def run_checks() -> List[str]:
    """Return every problem found (empty list = documentation is healthy)."""
    problems = []
    problems += [f"missing module docstring: {m}" for m in missing_module_docstrings()]

    doc_files = []
    for name in REQUIRED_DOCS:
        path = ROOT / name
        if path.exists():
            doc_files.append(path)
        else:
            problems.append(f"missing documentation file: {name}")
    for extra in sorted((ROOT / "docs").glob("*.md")) if (ROOT / "docs").exists() else []:
        if extra not in doc_files:
            doc_files.append(extra)

    problems += [f"broken link: {b}" for b in broken_markdown_links(doc_files)]
    return problems


def main() -> int:
    problems = run_checks()
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        return 1
    print("docs-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
