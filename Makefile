# Developer entry points. Run from the repository root.
#
#   make test        - tier-1 test suite (the gate every PR must keep green)
#   make bench-smoke - fast serving + streaming + kernel benchmarks
#                      (assert speedups; kernel smoke gates against
#                      benchmarks/baselines.json with a 20% regression margin)
#   make bench       - every paper-table benchmark (slow: trains many selectors)
#   make stream-demo - run the streaming quickstart example end to end
#   make docs-check  - docstring + documentation-link checks

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke bench stream-demo docs-check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q benchmarks/bench_serving_throughput.py benchmarks/bench_streaming_throughput.py
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_detector_kernels.py --smoke

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q benchmarks/

stream-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/streaming_quickstart.py

docs-check:
	$(PYTHON) tools/docs_check.py
