# Developer entry points. Run from the repository root.
#
#   make test        - tier-1 test suite (the gate every PR must keep green)
#   make chaos       - fault-injection suite for the sharded service
#                      (shard kills, hangs, flaky transport) under a hard
#                      wall-clock timeout
#   make bench-smoke - fast serving + streaming + kernel + service benchmarks
#                      (assert speedups; smoke runs gate against
#                      benchmarks/baselines.json with recorded margins and
#                      print per-gate wall time)
#   make bench       - every paper-table benchmark (slow: trains many selectors)
#   make stream-demo - run the streaming quickstart example end to end
#   make obs-demo    - run the observability walkthrough example end to end
#   make distill-demo - run the distill + quantize + refresh example end to end
#   make cascade-demo - run the cost-aware cascade + SLO admission example
#   make docs-check  - docstring + documentation-link checks

PYTHON ?= python
PYTHONPATH := src

#: hard wall-clock ceiling for the chaos suite — a hung shard or a stuck
#: recovery loop must fail the build, not wedge it
CHAOS_TIMEOUT ?= 600

.PHONY: test chaos bench-smoke bench stream-demo obs-demo distill-demo cascade-demo docs-check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

chaos:
	PYTHONPATH=$(PYTHONPATH) timeout $(CHAOS_TIMEOUT) $(PYTHON) -m pytest -x -q tests/chaos

bench-smoke:
	@export PYTHONPATH=$(PYTHONPATH); set -e; \
	total=$$(date +%s); \
	gate() { name=$$1; shift; start=$$(date +%s); "$$@"; \
	  echo "gate $$name: $$(( $$(date +%s) - start ))s"; }; \
	gate bench-pytest        $(PYTHON) -m pytest -q benchmarks/bench_serving_throughput.py benchmarks/bench_streaming_throughput.py; \
	gate detector-kernels    $(PYTHON) benchmarks/bench_detector_kernels.py --smoke; \
	gate streaming           $(PYTHON) benchmarks/bench_streaming_throughput.py --smoke; \
	gate service-scalability $(PYTHON) benchmarks/bench_service_scalability.py --smoke; \
	gate serving-tiers       $(PYTHON) benchmarks/bench_serving_throughput.py --smoke; \
	gate e2e-slo             $(PYTHON) benchmarks/bench_e2e_slo.py --smoke; \
	echo "bench-smoke total: $$(( $$(date +%s) - total ))s"

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q benchmarks/

stream-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/streaming_quickstart.py

obs-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/observability_demo.py

distill-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/distill_demo.py

cascade-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/cascade_demo.py

docs-check:
	$(PYTHON) tools/docs_check.py
