# Developer entry points. Run from the repository root.
#
#   make test        - tier-1 test suite (the gate every PR must keep green)
#   make bench-smoke - fast serving-throughput benchmark (asserts >= 5x warm cache)
#   make bench       - every paper-table benchmark (slow: trains many selectors)
#   make docs-check  - docstring + documentation-link checks

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-smoke bench docs-check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q benchmarks/bench_serving_throughput.py

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q benchmarks/

docs-check:
	$(PYTHON) tools/docs_check.py
